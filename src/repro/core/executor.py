"""The Executor (paper §4.2, Figure 1).

Responsible for "(i) scheduling the resulting execution plan on the
selected data processing frameworks, (ii) monitoring the progress of plan
execution, (iii) coping with failures, and (iv) aggregating and returning
results to users".

Concretely: task atoms run in dependency order on their assigned
platforms; channel hand-offs between platforms are priced by the movement
cost model; and all virtual-time charges are aggregated into
:class:`~repro.core.metrics.ExecutionMetrics`.

Coping with failures is a three-rung ladder (see
:mod:`repro.core.resilience`):

1. **retry** — a failed atom is re-attempted up to ``max_retries`` times
   on its own platform, with exponential backoff + deterministic jitter
   charged to the virtual-time ledger as ``retry.backoff``;
2. **quarantine** — every attempt feeds the per-platform circuit breaker
   on :class:`~repro.core.runtime.RuntimeContext`; an atom that exhausts
   its retries (or hits a :class:`~repro.errors.PlatformDownError`)
   opens its platform's breaker;
3. **failover** — with ``failover=True`` and a ``task_optimizer``
   attached, the Executor then asks the multi-platform optimizer to
   re-enumerate the *remaining* plan suffix with the quarantined
   platform excluded, re-using every already-materialised channel as an
   exact-cardinality bound source, and carries on.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.channels import CollectionChannel, ColumnarChannel
from repro.core.physical.columnar import can_elide, loop_state_consumers
from repro.core.checkpoint import plan_fingerprint
from repro.core.execution.plan import ExecutionPlan, LoopAtom, TaskAtom
from repro.core.listeners import (
    ATOM_FAILED_OVER,
    ATOM_FINISHED,
    ATOM_RETRIED,
    ATOM_STARTED,
    ATOM_TIMED_OUT,
    EXECUTION_FINISHED,
    EXECUTION_STARTED,
    LOOP_ITERATION,
    PLATFORM_QUARANTINED,
    RUN_RESUMED,
    ExecutionEvent,
    ExecutionListener,
)
from repro.core.metrics import (
    CalibrationObservation,
    CardinalityMisestimate,
    CostEntry,
    ExecutionMetrics,
)
from repro.core.recovery import config_epoch, import_registry_state
from repro.core.observability.resources import (
    ResourceProfiler,
    profiling_enabled,
)
from repro.core.observability.spans import (
    KIND_EXECUTOR,
    KIND_MOVEMENT,
    maybe_span,
)
from repro.core.optimizer.cost import MovementCostModel
from repro.core.replan import plan_operator_ids, remainder_plan
from repro.core.resilience import BackoffPolicy
from repro.core.runtime import RuntimeContext
from repro.core.scheduler import ConcurrentAtomScheduler, CriticalPath
from repro.errors import (
    AtomDeadlineError,
    AtomExhaustedError,
    ExecutionError,
    OptimizationError,
    PlatformDownError,
    TransientError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.optimizer.calibration import CalibrationStore
    from repro.core.optimizer.enumerator import MultiPlatformOptimizer
    from repro.platforms.base import Platform


#: sentinel distinguishing "not supplied" from an explicit ``None``
#: (the concurrent scheduler passes ``ordinal=None`` when no failure
#: injector is configured, which must *not* fall back to ``next_atom``)
_UNSET: Any = object()


@dataclass
class ExecutionResult:
    """Plan outputs (per collect-sink operator id) plus run metrics."""

    outputs: dict[int, list[Any]]
    metrics: ExecutionMetrics
    #: "hit"/"miss" when a serving plan cache intermediated this run,
    #: None for direct executions (set by RheemContext.execute)
    plan_cache: str | None = None

    @property
    def single(self) -> list[Any]:
        """The output when the plan has exactly one collect sink."""
        if len(self.outputs) != 1:
            raise ExecutionError(
                f"plan has {len(self.outputs)} collect sinks; use .outputs"
            )
        return next(iter(self.outputs.values()))


class _DeadlineRuntime:
    """Runtime clone handed to a deadline-guarded ``execute_atom`` call.

    Shares everything a platform legitimately needs — catalog, failure
    injector, health, bound loop state, the source cache — but swaps in
    a private shard tracer: the platform wires its atom ledger to
    ``runtime.tracer``, so if the call overruns its deadline the
    abandoned zombie thread keeps writing spans/charges into a tracer
    nobody reads, instead of corrupting the live trace.
    """

    __slots__ = (
        "catalog",
        "failure_injector",
        "tracer",
        "checkpoint",
        "health",
        "bound_sources",
        "source_cache",
        "caching_enabled",
    )

    def __init__(self, base: RuntimeContext, tracer):
        self.catalog = base.catalog
        self.failure_injector = base.failure_injector
        self.tracer = tracer
        self.checkpoint = None  # execute_atom never checkpoints
        self.health = base.health
        self.bound_sources = base.bound_sources
        self.source_cache = base.source_cache
        self.caching_enabled = base.caching_enabled


class Executor:
    """Schedules, monitors, retries and (optionally) fails over atoms."""

    #: virtual ms charged per failover re-planning round
    FAILOVER_REPLAN_MS = 0.5

    def __init__(
        self,
        movement: MovementCostModel | None = None,
        max_retries: int = 2,
        listeners: list[ExecutionListener] | None = None,
        backoff: BackoffPolicy | None = None,
        task_optimizer: "MultiPlatformOptimizer | None" = None,
        failover: bool = False,
        max_failovers: int | None = None,
        parallelism: int | None = None,
        execution_mode: str | None = None,
        columnar: bool | None = None,
        columnar_native: bool | None = None,
        calibration: "CalibrationStore | None" = None,
        resume: bool | None = None,
        deadline_ms: float | None = None,
        profile: bool | None = None,
    ):
        self.movement = movement or MovementCostModel()
        self.max_retries = max_retries
        self.listeners: list[ExecutionListener] = list(listeners or [])
        self.backoff = backoff or BackoffPolicy()
        #: multi-platform optimizer used to re-plan suffixes on failover
        self.task_optimizer = task_optimizer
        #: whether exhausted atoms may fail over to other platforms
        self.failover = failover
        #: hard cap on failovers per execution (None: one per platform)
        self.max_failovers = max_failovers
        #: how many task atoms may run concurrently (1 = sequential).
        #: ``None`` reads ``REPRO_PARALLELISM`` (default 1).  See
        #: :mod:`repro.core.scheduler` for the determinism guarantees.
        if parallelism is None:
            try:
                parallelism = int(os.environ.get("REPRO_PARALLELISM", "1"))
            except ValueError:
                parallelism = 1
        self.parallelism = max(1, parallelism)
        #: which backend the concurrent scheduler dispatches onto:
        #: ``"thread"`` (default) or ``"process"`` (forked workers +
        #: shared-memory columnar transport — see
        #: :mod:`repro.core.scheduler`).  ``None`` reads
        #: ``REPRO_EXECUTION_MODE`` (junk values fall back to thread;
        #: an *explicit* bad argument raises).  Like ``parallelism``,
        #: the mode never changes outputs or accounting, so it is
        #: excluded from the journal ``config_epoch``.
        if execution_mode is None:
            raw_mode = os.environ.get(
                "REPRO_EXECUTION_MODE", ""
            ).strip().lower()
            execution_mode = raw_mode if raw_mode in ("thread", "process") else "thread"
        elif execution_mode not in ("thread", "process"):
            raise ValueError(
                f"execution_mode must be 'thread' or 'process', "
                f"got {execution_mode!r}"
            )
        self.execution_mode = execution_mode
        #: opt-in columnar hand-offs: numeric channel payloads are packed
        #: into struct-of-arrays buffers (see
        #: :class:`repro.core.channels.ColumnarChannel`); ingest/egest
        #: conversions are charged to the ledger.  ``None`` reads
        #: ``REPRO_COLUMNAR`` (default off).
        if columnar is None:
            columnar = os.environ.get(
                "REPRO_COLUMNAR", ""
            ).strip().lower() in ("1", "true", "yes", "on")
        self.columnar = columnar
        #: columnar-*native* consumption: eligible consumers on opted-in
        #: platforms receive the column buffers themselves
        #: (:class:`repro.core.physical.columnar.ColumnarBatch`) instead
        #: of materialised rows; the skipped unpack is recorded as a
        #: zero-cost ``columnar.elide`` ledger entry right after the
        #: boundary's ordinary (virtual) ``columnar.egest`` charge, so
        #: virtual time and outputs are identical to the egest path and
        #: only wall time changes.  ``None`` reads
        #: ``REPRO_COLUMNAR_NATIVE`` (default on); only meaningful when
        #: ``columnar`` is set.
        if columnar_native is None:
            columnar_native = os.environ.get(
                "REPRO_COLUMNAR_NATIVE", ""
            ).strip().lower() not in ("0", "false", "no", "off")
        self.columnar_native = columnar_native
        #: optional cross-run calibration store; when attached, the
        #: deterministic per-run observation feed
        #: (``metrics.calibration_observations``) is folded into its
        #: priors at the end of every execution (kill-switch aware)
        self.calibration = calibration
        #: opt-in crash recovery: when a ``runtime.journal`` holds a
        #: compatible run journal, its trusted prefix is replayed instead
        #: of re-executed (see :mod:`repro.core.recovery`).  ``None``
        #: reads ``REPRO_RESUME`` (default off).
        if resume is None:
            resume = os.environ.get(
                "REPRO_RESUME", ""
            ).strip().lower() in ("1", "true", "yes", "on")
        self.resume = resume
        #: per-atom wall-clock deadline: an ``execute_atom`` call that
        #: outlives it is abandoned and treated as a platform outage
        #: (:class:`~repro.errors.AtomDeadlineError` → breaker →
        #: failover).  ``None`` reads ``REPRO_DEADLINE_MS`` (default off).
        if deadline_ms is None:
            raw = os.environ.get("REPRO_DEADLINE_MS", "").strip()
            if raw:
                try:
                    deadline_ms = float(raw)
                except ValueError:
                    deadline_ms = None
        self.deadline_ms = (
            deadline_ms if deadline_ms is not None and deadline_ms > 0 else None
        )
        #: opt-in per-atom resource profiling (CPU vs wall, peak
        #: allocation, GC pauses, queue wait, channel bytes — see
        #: :mod:`repro.core.observability.resources`).  ``None`` reads
        #: ``REPRO_PROFILE`` (default off).  When off, ``_profiler`` is
        #: ``None`` and every hook is a single identity check: outputs,
        #: virtual time, ledger sequence and span shape are untouched.
        if profile is None:
            profile = profiling_enabled()
        self.profile = profile
        self._profiler = ResourceProfiler() if profile else None
        #: operator ids whose channels must stay plain (collect sinks:
        #: their payload is the user-facing result, pulled uncharged)
        self._plain_channel_ids: frozenset[int] = frozenset()
        #: serializes listener callbacks under the concurrent scheduler
        self._listener_lock = threading.Lock()
        #: optional process-wide admission pool
        #: (:class:`~repro.core.serving.admission.PlatformSlotPool`)
        #: installed by the serving daemon so concurrent queries share —
        #: rather than multiply — each platform's execution slots
        self.slot_pool = None

    def add_listener(self, listener: ExecutionListener) -> None:
        """Attach a monitoring listener (see repro.core.listeners)."""
        self.listeners.append(listener)

    def _emit(self, kind: str, tracer, /, **details) -> None:
        """Record a monitoring event on ``tracer`` and fan out to listeners.

        ``tracer`` is passed explicitly (usually ``metrics.ledger.tracer``)
        because under the concurrent scheduler worker threads emit
        against their private shard tracer, never the coordinator's.
        Listener callbacks are serialized by a lock; under concurrency
        they fire in completion order (monitoring is live and
        best-effort), while span events — grafted with their shard —
        stay deterministic.
        """
        if tracer is not None:
            # Subsume monitoring events as span events: every ATOM_*/
            # PLATFORM_QUARANTINED/... lands on the innermost open span.
            tracer.event(kind, **details)
        if not self.listeners:
            return
        event = ExecutionEvent(kind, details)
        with self._listener_lock:
            for listener in self.listeners:
                listener.on_event(event)

    def execute(
        self, plan: ExecutionPlan, runtime: RuntimeContext | None = None
    ) -> ExecutionResult:
        """Run an execution plan and aggregate its results.

        When failover is enabled, the plan handed back by each failover
        round replaces ``plan`` for the remainder of the run; outputs are
        still keyed by the original collect sinks (operator ids are
        stable across re-plans).
        """
        runtime = runtime or RuntimeContext()
        tracer = runtime.tracer
        self._tracer = tracer
        metrics = ExecutionMetrics(
            registry=tracer.registry if tracer is not None else None
        )
        # The ledger is the virtual clock source: every charge advances
        # the tracer, which is how span virtual durations reconcile with
        # ledger totals (see repro.core.observability.spans).
        metrics.ledger.tracer = tracer
        started = time.perf_counter()
        self._atom_seq = 0  # run-local ordinal: stable backoff-jitter token
        collect_sinks = plan.collect_sinks
        self._plain_channel_ids = frozenset(sink.id for sink in collect_sinks)
        channels: dict[int, CollectionChannel] = {}
        models: dict[str, Any] = {}
        charged_platforms: set[str] = set()
        excluded_platforms: set[str] = set()
        cpath = CriticalPath()

        span = None
        if tracer is not None:
            span = tracer.start_span(
                "execute",
                KIND_EXECUTOR,
                atoms=len(plan.atoms),
                platforms=[p.name for p in plan.platforms],
            )
        try:
            self._emit(
                EXECUTION_STARTED,
                tracer,
                atoms=len(plan.atoms),
                platforms=[p.name for p in plan.platforms],
            )
            self._guard_checkpoint(plan, runtime)

            current = plan
            start = 0
            first_segment = True
            while True:
                models.update(
                    {p.name: p.cost_model for p in current.platforms}
                )
                for platform in current.platforms:
                    if platform.name in charged_platforms:
                        continue
                    charged_platforms.add(platform.name)
                    metrics.ledger.charge(
                        "startup", platform.cost_model.startup_ms(), platform.name
                    )
                self._estimates = current.estimates
                self._estimate_kinds = current.estimate_kinds
                self._estimate_corrections = current.estimate_corrections
                if first_segment:
                    # Journal bootstrap happens after the startup charges:
                    # record slices begin where the first atom's effects
                    # do, and a resumed run re-charges identical startups
                    # live before replaying the prefix.
                    start = self._prepare_journal(
                        current, channels, runtime, metrics, cpath
                    )
                    first_segment = False
                try:
                    self._run_plan_atoms(
                        current, channels, runtime, metrics, models, cpath,
                        start=start,
                    )
                    break
                except AtomExhaustedError as failure:
                    start = 0
                    current = self._failover(
                        current, failure, channels, runtime, metrics,
                        excluded_platforms,
                    )

            outputs = {}
            for sink in collect_sinks:
                if sink.id not in channels:
                    raise ExecutionError(
                        f"collect sink {sink!r} produced no channel"
                    )
                outputs[sink.id] = channels[sink.id].require_data()
            metrics.wall_ms = (time.perf_counter() - started) * 1000.0
            metrics.makespan_ms = min(cpath.makespan_ms, metrics.virtual_ms)
            if self.calibration is not None:
                # Fold the deterministic observation feed into the
                # cross-run priors (no ledger charge: bookkeeping, not
                # virtual work; a no-op under REPRO_NO_CALIBRATION).
                self.calibration.ingest(metrics)
            self._emit(
                EXECUTION_FINISHED,
                tracer,
                virtual_ms=metrics.virtual_ms,
                makespan_ms=metrics.makespan_ms,
                wall_ms=metrics.wall_ms,
                atoms_executed=metrics.atoms_executed,
                retries=metrics.retries,
                failovers=metrics.failovers,
                quarantines=metrics.quarantines,
            )
            if span is not None:
                span.set(
                    virtual_ms=metrics.virtual_ms,
                    makespan_ms=metrics.makespan_ms,
                    atoms_executed=metrics.atoms_executed,
                    retries=metrics.retries,
                )
            return ExecutionResult(outputs, metrics)
        finally:
            if span is not None:
                tracer.end_span(span)
            self._tracer = None

    # ------------------------------------------------------------------
    # fault tolerance: checkpoint staleness guard and failover
    # ------------------------------------------------------------------
    def _config_epoch(self) -> str:
        """The execution-config epoch this executor persists state under."""
        return config_epoch(
            columnar=self.columnar,
            columnar_native=self.columnar_native,
            calibration=self.calibration is not None,
        )

    def _guard_checkpoint(
        self, plan: ExecutionPlan, runtime: RuntimeContext
    ) -> None:
        """Auto-clear structurally/configurationally stale checkpoints.

        Staleness covers the plan structure *and* the execution-config
        epoch: a checkpoint written under a different columnar /
        kernel / calibration configuration replays wrong charges, so it
        is cleared like a reshaped plan.  Duck-typed checkpoint managers
        without the ``epoch`` parameter keep working (fingerprint-only).
        """
        checkpoint = runtime.checkpoint
        ensure = getattr(checkpoint, "ensure_fingerprint", None)
        if ensure is None:
            return
        fingerprint = plan_fingerprint(plan)
        try:
            ensure(fingerprint, epoch=self._config_epoch())
        except TypeError:
            ensure(fingerprint)

    # ------------------------------------------------------------------
    # durable run journal: commit and resume (see repro.core.recovery)
    # ------------------------------------------------------------------
    @staticmethod
    def _active_journal(runtime: RuntimeContext):
        """The runtime's journal, or None (failover deactivates it)."""
        return getattr(runtime, "journal", None)

    def _prepare_journal(
        self,
        plan: ExecutionPlan,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
        cpath: CriticalPath,
    ) -> int:
        """Bootstrap the run journal; returns how many atoms to skip.

        With resume enabled and a journal whose header matches this
        plan's fingerprint *and* config epoch, the trusted record prefix
        is replayed (channels from checkpoints, ledger/span/health/
        injector state from the records) and the journal is rewritten to
        exactly that prefix before appending resumes.  Anything else —
        fresh journal, torn header, mismatched plan or epoch, or a
        prefix whose checkpoints fail validation at record 0 — starts a
        fresh journal.
        """
        journal = self._active_journal(runtime)
        if journal is None:
            return 0
        fingerprint = plan_fingerprint(plan)
        epoch = self._config_epoch()
        header = journal.header(
            fingerprint=fingerprint, epoch=epoch,
            parallelism=self.parallelism,
            execution_mode=self.execution_mode,
        )
        if self.resume:
            stored_header, records, torn = journal.load()
            if torn:
                metrics.registry.counter(
                    "journal_torn_records",
                    "damaged journal tail lines truncated on load",
                ).inc(torn)
            if (
                stored_header is not None
                and stored_header.get("fingerprint") == fingerprint
                and stored_header.get("epoch") == epoch
            ):
                replayed = self._replay_journal(
                    plan, records, channels, runtime, metrics, cpath
                )
                if replayed:
                    journal.reset_to(stored_header, records[:replayed])
                    metrics.resumes += 1
                    metrics.atoms_restored += replayed
                    # Listener-only (tracer=None): resume must not add
                    # span events an uninterrupted run would not have.
                    self._emit(
                        RUN_RESUMED,
                        None,
                        run_id=journal.run_id,
                        atoms_restored=replayed,
                        atoms_total=len(plan.atoms),
                        torn_records=torn,
                    )
                    return replayed
        journal.begin(header)
        return 0

    def _replay_journal(
        self,
        plan: ExecutionPlan,
        records: list[dict],
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
        cpath: CriticalPath,
    ) -> int:
        """Replay the longest restorable record prefix; returns its length.

        Replay is exact, not approximate: ledger entries are appended
        verbatim (never re-charged — re-clocking would double-advance
        the virtual clock), span slices are reconstructed with fresh ids
        under the current ``execute`` span, and the virtual clock / open
        span self-time are *set* to the journaled absolute values — the
        resumed run re-derives the identical prefix state, so absolutes
        reproduce bit-for-bit where re-basing arithmetic could drift by
        an ulp.  The prefix ends at the first record whose checkpointed
        outputs are missing or fail CRC validation: everything from
        there on is recomputed (never guessed).
        """
        checkpoint = runtime.checkpoint
        ledger = metrics.ledger
        tracer = ledger.tracer
        atoms = plan.atoms
        replayed = 0
        last: dict | None = None
        for record in records:
            if (
                record.get("t") != "atom"
                or record.get("index") != replayed
                or replayed >= len(atoms)
            ):
                break
            atom = atoms[replayed]
            restored = self._load_journaled_outputs(
                replayed, atom, record, checkpoint
            )
            if restored is None:
                break
            before = ledger.total_ms
            cpath.sync_overhead(before)
            channels.update(restored)
            if tracer is not None:
                self._restore_spans(tracer, record.get("spans") or [])
            for label, ms, platform_name, atom_id in record["entries"]:
                ledger.entries.append(
                    CostEntry(label, ms, platform_name, atom_id)
                )
            if tracer is not None and record.get("v_after") is not None:
                tracer.v_clock = record["v_after"]
            for fields in record.get("misestimates", ()):
                metrics.misestimates.append(CardinalityMisestimate(*fields))
            for fields in record.get("observations", ()):
                metrics.calibration_observations.append(
                    CalibrationObservation(*fields)
                )
            cpath.record(atom, ledger.total_ms - before)
            self._emit(
                ATOM_FINISHED,
                None,
                atom=atom.id,
                platform=atom.platform.name,
                virtual_ms=ledger.total_ms - before,
                restored_from_journal=True,
            )
            last = record
            replayed += 1
        if last is not None:
            # State *after* the prefix, wholesale: counters/histograms,
            # breaker clocks and cool-downs, the injector's position in
            # its fault schedule, and the backoff-jitter sequence.
            import_registry_state(metrics.registry, last.get("registry") or {})
            if last.get("health"):
                runtime.health.restore_state(last["health"])
            if (
                runtime.failure_injector is not None
                and last.get("injector") is not None
            ):
                runtime.failure_injector.restore_state(last["injector"])
            self._atom_seq = int(last.get("atom_seq", self._atom_seq))
            if tracer is not None:
                if last.get("v_after") is not None:
                    tracer.v_clock = last["v_after"]
                outer = last.get("outer_v_self")
                if outer is not None and tracer.current is not None:
                    tracer.current.v_self = outer
        return replayed

    def _load_journaled_outputs(
        self, ordinal: int, atom, record: dict, checkpoint
    ) -> dict[int, CollectionChannel] | None:
        """Rebuild one journaled atom's output channels from checkpoints.

        Channel shapes (cardinality, columnar flag) come from the
        record; payloads come from the positional checkpoint store.
        ``None`` — ending the restorable prefix — when the checkpoint is
        absent, corrupt, or disagrees with the journaled cardinality.
        """
        shapes = record.get("outputs")
        output_ids = sorted(atom.output_ids)
        if (
            checkpoint is None
            or shapes is None
            or len(shapes) != len(output_ids)
        ):
            return None
        restored: dict[int, CollectionChannel] = {}
        for index, op_id in enumerate(output_ids):
            card, is_columnar = shapes[index]
            loaded = checkpoint.load(ordinal, index)
            if loaded is None:
                return None
            data, _cost = loaded
            if len(data) != card:
                return None
            channel = (
                ColumnarChannel.from_rows(data, atom.platform.name)
                if is_columnar
                else None
            )
            if channel is None:
                channel = CollectionChannel(
                    data, atom.platform.name, owned=True
                )
            restored[op_id] = channel
        return restored

    def _restore_spans(self, tracer, serialized: list[dict]) -> None:
        """Reconstruct one record's span slice on the live tracer.

        Spans get fresh ids from the tracer's counter; slice roots are
        re-parented under the current (``execute``) span; virtual values
        are the journaled absolutes.  Wall times are zero-width at the
        restore instant — wall clocks are honest, and no honest claim
        about the crashed process's wall time can be made.
        """
        from repro.core.observability.spans import Span, SpanEvent

        base = tracer.current
        now = tracer._now_ms()
        new_spans: list[Span] = []
        for record in serialized:
            parent_index = record["parent"]
            if parent_index >= 0:
                parent_id = new_spans[parent_index].span_id
            else:
                parent_id = base.span_id if base is not None else None
            span = Span(
                trace_id=tracer.trace_id,
                span_id=next(tracer._next_span_id),
                parent_id=parent_id,
                name=record["name"],
                kind=record["kind"],
                wall_start=now,
                wall_end=now,
                v_start=record["v_start"],
                v_end=record["v_end"],
                attributes=dict(record["attrs"]),
                events=[
                    SpanEvent(name, now, virtual_ms, dict(attrs))
                    for name, virtual_ms, attrs in record["events"]
                ],
                v_self=record["v_self"],
            )
            new_spans.append(span)
            tracer.spans.append(span)

    def _journal_mark(self, metrics: ExecutionMetrics) -> tuple:
        """Capture the state lengths an atom's effects will extend.

        Taken immediately before an atom's first effect lands on the
        coordinator state (sequentially: before it runs; concurrently:
        before its shard is grafted/merged), so the slice between mark
        and :meth:`_journal_commit` is exactly the atom's contribution —
        the same mechanism for both execution modes.
        """
        tracer = metrics.ledger.tracer
        return (
            len(metrics.ledger.entries),
            len(tracer.spans) if tracer is not None else 0,
            len(metrics.misestimates),
            len(metrics.calibration_observations),
        )

    def _journal_commit(
        self,
        journal,
        mark: tuple,
        index: int,
        atom,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
    ) -> None:
        """Append one atom-completion record durably (the WAL step).

        The record carries the atom's ledger/span/misestimate slices
        plus full post-atom snapshots of the registry, health tracker
        and failure injector — everything resume needs to reconstruct
        the coordinator state without re-executing.  The chaos
        injector's hooks bracket the write, simulating crashes on
        either side of the durability point (or a torn tail).
        """
        entries_mark, spans_mark, mis_mark, obs_mark = mark
        from repro.core.recovery import export_registry_state

        tracer = metrics.ledger.tracer
        ledger = metrics.ledger
        record: dict[str, Any] = {
            "t": "atom",
            "index": index,
            "atom_id": atom.id,
            "platform": atom.platform.name,
            "entries": [
                [e.label, e.ms, e.platform, e.atom_id]
                for e in ledger.entries[entries_mark:]
            ],
            "outputs": [
                [
                    len(channels[op_id]),
                    isinstance(channels[op_id], ColumnarChannel),
                ]
                for op_id in sorted(atom.output_ids)
            ],
            "spans": (
                self._serialize_spans(tracer.spans[spans_mark:])
                if tracer is not None
                else []
            ),
            "v_after": tracer.v_clock if tracer is not None else None,
            "outer_v_self": (
                tracer.current.v_self
                if tracer is not None and tracer.current is not None
                else None
            ),
            "misestimates": [
                [m.operator_id, m.estimated, m.observed]
                for m in metrics.misestimates[mis_mark:]
            ],
            "observations": [
                [o.operator_id, o.kind, o.platform, o.estimated, o.observed,
                 o.correction]
                for o in metrics.calibration_observations[obs_mark:]
            ],
            "registry": export_registry_state(metrics.registry),
            "health": runtime.health.export_state(),
            "injector": (
                runtime.failure_injector.export_state()
                if runtime.failure_injector is not None
                else None
            ),
            "atom_seq": getattr(self, "_atom_seq", 0),
        }
        crash = getattr(runtime, "crash_injector", None)
        if crash is not None:
            crash.before_commit()
        journal.append(record)
        if crash is not None:
            crash.after_commit(journal)

    @staticmethod
    def _serialize_spans(spans: list) -> list[dict]:
        """Serialize one atom's span slice for a journal record.

        Parents are slice-relative indices (-1: re-parent under the
        resumed ``execute`` span); virtual values are absolute; wall
        times are dropped (see :meth:`_restore_spans`).
        """
        index_of = {span.span_id: i for i, span in enumerate(spans)}
        return [
            {
                "name": span.name,
                "kind": span.kind,
                "parent": index_of.get(span.parent_id, -1),
                "v_start": span.v_start,
                "v_end": span.v_end,
                "v_self": span.v_self,
                "attrs": span.attributes,
                "events": [
                    [event.name, event.virtual_ms, event.attributes]
                    for event in span.events
                ],
            }
            for span in spans
        ]

    def _failover(
        self,
        current: ExecutionPlan,
        failure: AtomExhaustedError,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
        excluded_platforms: set[str],
    ) -> ExecutionPlan:
        """Quarantine the failed platform and re-plan the plan suffix.

        Re-raises ``failure`` when failover is disabled, unconfigured,
        capped out, or no surviving platform can run the remainder.
        """
        atom = failure.atom
        if (
            not self.failover
            or self.task_optimizer is None
            or current.source_plan is None
            or atom is None
        ):
            raise failure

        platform_name = atom.platform.name
        excluded_platforms.add(platform_name)
        health = runtime.health
        if health.is_available(platform_name):
            cooldown = health.quarantine(platform_name)
        else:  # breaker already tripped (threshold or fail-fast path)
            record = health.health(platform_name)
            cooldown = max(
                0.0, record.quarantined_until_ms - health.clock_ms
            )
        metrics.quarantines += 1
        self._emit(
            PLATFORM_QUARANTINED,
            metrics.ledger.tracer,
            platform=platform_name,
            atom=atom.id,
            cooldown_ms=cooldown,
            error=str(failure.cause or failure),
        )

        cap = (
            self.max_failovers
            if self.max_failovers is not None
            else len(self.task_optimizer.platforms)
        )
        if metrics.failovers >= cap:
            raise failure

        # Atoms whose outputs are all materialised count as executed; the
        # failed atom (and anything downstream) has no channels yet.
        executed_ids: set[int] = set()
        for done in current.atoms:
            if done.output_ids and all(
                op_id in channels for op_id in done.output_ids
            ):
                executed_ids |= plan_operator_ids(done)

        # Also exclude anything the health tracker already holds open
        # (e.g. quarantined in an earlier execution of this context).
        roster = [p.name for p in self.task_optimizer.platforms]
        excluded = set(excluded_platforms) | {
            name for name in roster if not runtime.health.is_available(name)
        }
        try:
            with maybe_span(
                metrics.ledger.tracer,
                "failover.replan",
                KIND_EXECUTOR,
                atom=atom.id,
                from_platform=platform_name,
                excluded=sorted(excluded),
            ):
                remainder = remainder_plan(
                    current.source_plan, executed_ids, channels
                )
                replanned = self.task_optimizer.optimize(
                    remainder,
                    exclude_platforms=excluded,
                    tracer=metrics.ledger.tracer,
                )
        except (OptimizationError, ExecutionError) as error:
            raise AtomExhaustedError(
                f"{failure} (failover impossible: {error})",
                atom=atom,
                cause=failure.cause,
            ) from error

        # Positional checkpoint keys no longer line up with the replanned
        # suffix; stop checkpointing for the rest of this run (earlier
        # saves stay valid for a future resume of the *original* plan).
        # The journal deactivates with it: its records describe the
        # original plan's ordinals.  A crash after this point resumes the
        # clean prefix, and the restored injector/health state makes the
        # re-run fail and fail over identically — same final bill.
        runtime.checkpoint = None
        runtime.journal = None

        metrics.failovers += 1
        metrics.ledger.charge(
            "failover.replan", self.FAILOVER_REPLAN_MS, platform_name, atom.id
        )
        self._emit(
            ATOM_FAILED_OVER,
            metrics.ledger.tracer,
            atom=atom.id,
            from_platform=platform_name,
            remaining_atoms=len(replanned.atoms),
            platforms=[p.name for p in replanned.platforms],
            error=str(failure.cause or failure),
        )
        return replanned

    # ------------------------------------------------------------------
    def _run_plan_atoms(
        self,
        plan: ExecutionPlan,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
        models: dict[str, Any],
        cpath: CriticalPath,
        start: int = 0,
    ) -> None:
        """Run one top-level plan segment, tracking the critical path.

        ``start`` atoms were already replayed from the run journal; only
        the suffix executes.  Dispatches to the concurrent DAG scheduler
        when ``parallelism`` allows it; otherwise runs the sequential
        loop.  Checkpointing is positional (atom-ordinal keyed) and
        restore/save ordering is part of its contract, so an attached
        checkpoint forces the sequential path — *unless* a journal is
        active: journaled runs save at the scheduler's deterministic
        replay step instead, and restore exclusively through resume.
        """
        journal = self._active_journal(runtime)
        # The dispatch decision depends on the *plan*, not the resumed
        # suffix length: a one-atom suffix must still execute through
        # the scheduler when the uninterrupted run would have (shard
        # grafts group v-clock additions differently from inline
        # charging, and resume promises bit-identical accounting).
        if (
            self.parallelism > 1
            and (runtime.checkpoint is None or journal is not None)
            and len(plan.atoms) > 1
        ):
            ConcurrentAtomScheduler(
                self, plan, channels, runtime, metrics, models, cpath,
                self.parallelism, start=start,
            ).run()
            return
        for ordinal, atom in enumerate(plan.atoms):
            if ordinal < start:
                continue
            before = metrics.ledger.total_ms
            cpath.sync_overhead(before)
            mark = self._journal_mark(metrics) if journal is not None else None
            # Positional restore serves un-journaled reruns; journaled
            # runs restore only through resume (which validates the
            # journal prefix), keeping behaviour parallelism-independent.
            if (
                runtime.checkpoint is not None
                and journal is None
                and self._restore_atom(ordinal, atom, channels, runtime, metrics)
            ):
                cpath.record(atom, metrics.ledger.total_ms - before)
                continue
            pool = self.slot_pool
            if pool is not None:
                # Shared admission: top-level atoms draw from the
                # process-wide per-platform budget (serving daemon).
                pool.acquire(atom.platform.name)
            try:
                if isinstance(atom, LoopAtom):
                    self._run_loop_atom(
                        atom, channels, runtime, metrics, models
                    )
                else:
                    self._run_task_atom(
                        atom, channels, runtime, metrics, models
                    )
            finally:
                if pool is not None:
                    pool.release(atom.platform.name)
            if runtime.checkpoint is not None:
                self._save_atom(ordinal, atom, channels, runtime, metrics)
            if journal is not None:
                self._journal_commit(
                    journal, mark, ordinal, atom, channels, runtime, metrics
                )
            cpath.record(atom, metrics.ledger.total_ms - before)

    def _run_atoms(
        self,
        plan: ExecutionPlan,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
        models: dict[str, Any],
        top_level: bool = False,
    ) -> None:
        for ordinal, atom in enumerate(plan.atoms):
            # Checkpointing applies to top-level atoms only: loop bodies
            # re-run every iteration by design.
            checkpointable = top_level and runtime.checkpoint is not None
            if checkpointable and self._restore_atom(
                ordinal, atom, channels, runtime, metrics
            ):
                continue
            if isinstance(atom, LoopAtom):
                self._run_loop_atom(atom, channels, runtime, metrics, models)
            else:
                self._run_task_atom(atom, channels, runtime, metrics, models)
            if checkpointable and runtime.checkpoint is not None:
                self._save_atom(ordinal, atom, channels, runtime, metrics)

    def _restore_atom(
        self,
        ordinal: int,
        atom: TaskAtom | LoopAtom,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
    ) -> bool:
        """Restore an atom's outputs from the checkpoint store, if all
        of them are present and pass CRC validation; returns True when
        the atom can be skipped.  Loads are collected before any channel
        is assigned: a corrupt output mid-set must fall back to
        recomputing the whole atom, not leave half its channels
        restored."""
        checkpoint = runtime.checkpoint
        output_ids = sorted(atom.output_ids)
        if not output_ids:
            return False
        if not all(checkpoint.has(ordinal, i) for i in range(len(output_ids))):
            return False
        loaded: list[tuple[int, list[Any], float]] = []
        for index, op_id in enumerate(output_ids):
            restored = checkpoint.load(ordinal, index)
            if restored is None:  # present but corrupt: recompute instead
                metrics.registry.counter(
                    "checkpoint_corrupt",
                    "corrupted checkpoints detected (atom recomputed)",
                ).inc()
                return False
            data, cost = restored
            loaded.append((op_id, data, cost))
        for op_id, data, cost in loaded:
            channels[op_id] = CollectionChannel(data, atom.platform.name)
            metrics.ledger.charge(
                "checkpoint.restore", cost, atom.platform.name, atom.id
            )
        metrics.atoms_skipped += 1
        self._emit(
            ATOM_FINISHED,
            metrics.ledger.tracer,
            atom=atom.id,
            platform=atom.platform.name,
            virtual_ms=0.0,
            restored_from_checkpoint=True,
        )
        return True

    def _save_atom(
        self,
        ordinal: int,
        atom: TaskAtom | LoopAtom,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
    ) -> None:
        checkpoint = runtime.checkpoint
        for index, op_id in enumerate(sorted(atom.output_ids)):
            cost = checkpoint.save(ordinal, index, channels[op_id].require_data())
            metrics.ledger.charge(
                "checkpoint.save", cost, atom.platform.name, atom.id
            )

    def _make_channel(
        self,
        op_id: int,
        data: list[Any],
        atom: TaskAtom | LoopAtom,
        metrics: ExecutionMetrics,
    ) -> CollectionChannel:
        """Build the hand-off channel for one atom output.

        With the columnar flag on, numeric payloads are packed into a
        :class:`ColumnarChannel`; the pack is explicit work, charged as
        ``columnar.ingest``.  A columnar-native batch output is adopted
        buffer-for-buffer (no repack), but charged the same virtual
        ``columnar.ingest`` — the pack price is a property of the
        boundary, not of which mode produced the data, which is what
        keeps native and egest-per-consumer bills identical.
        Collect-sink payloads and ineligible data stay in a plain
        (zero-copy, ``owned=True``) channel.
        """
        if self.columnar and op_id not in self._plain_channel_ids:
            if getattr(data, "is_columnar_batch", False):
                columnar = ColumnarChannel.from_batch(data, atom.platform.name)
            else:
                columnar = ColumnarChannel.from_rows(data, atom.platform.name)
            if columnar is not None:
                metrics.ledger.charge(
                    "columnar.ingest",
                    atom.platform.cost_model.columnar_ingest_ms(
                        float(len(columnar))
                    ),
                    atom.platform.name,
                    atom.id,
                )
                return columnar
        # ``owned=True``: Platform.egest builds a fresh list per boundary
        # output, so the channel can adopt it without a defensive copy
        # (zero-copy hand-off).
        return CollectionChannel(data, atom.platform.name, owned=True)

    def _pull_channel(
        self,
        channel: CollectionChannel,
        consumer: "Platform",
        metrics: ExecutionMetrics,
        atom_id: int,
        consumers: tuple = (),
    ) -> Any:
        """Materialise a channel payload for a consumer.

        Unpacking a columnar channel back into rows is explicit work,
        charged as ``columnar.egest`` per consuming hop (mirroring how
        movement is charged per hop).

        **Elision.**  When every consuming ``(operator, slot)`` in
        ``consumers`` can read this channel's layout natively (and both
        the executor and the consumer platform opt in), the row
        materialisation is skipped and the consumer receives a
        :class:`~repro.core.physical.columnar.ColumnarBatch` view of the
        buffers instead.  The virtual ``columnar.egest`` price is still
        charged — virtual time prices the hand-off identically in both
        modes — and the skip is recorded as an explicit zero-cost
        ``columnar.elide`` entry, so the native ledger is the egest
        ledger plus documented elide lines and nothing else.  The
        decision never consults the kernel kill switch: elision changes
        wall time only, the kill switch changes loop style only.
        """
        if isinstance(channel, ColumnarChannel):
            metrics.ledger.charge(
                "columnar.egest",
                consumer.cost_model.columnar_egest_ms(float(len(channel))),
                consumer.name,
                atom_id,
            )
            if (
                consumers
                and self.columnar_native
                and consumer.columnar_native
                and all(
                    can_elide(op, slot, channel.width, channel.scalar)
                    for op, slot in consumers
                )
            ):
                metrics.ledger.charge(
                    "columnar.elide", 0.0, consumer.name, atom_id
                )
                return channel.batch()
        return channel.require_data()

    def _charge_movement(
        self,
        channel: CollectionChannel,
        consumer: "Platform",
        metrics: ExecutionMetrics,
        models: dict[str, Any],
        atom_id: int,
    ) -> None:
        producer_model = models.get(channel.producer_platform)
        if producer_model is None or producer_model is consumer.cost_model:
            return
        ms = self.movement.transfer_ms(
            producer_model, consumer.cost_model, float(len(channel))
        )
        if ms:
            pair = f"{channel.producer_platform}->{consumer.name}"
            with maybe_span(
                metrics.ledger.tracer,
                f"move.{pair}",
                KIND_MOVEMENT,
                pair=pair,
                rows=len(channel),
                platform=consumer.name,
                atom=atom_id,
            ):
                metrics.ledger.charge(f"move.{pair}", ms, consumer.name, atom_id)
            metrics.observe_movement(pair, ms)

    def _run_task_atom(
        self,
        atom: TaskAtom,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
        models: dict[str, Any],
        *,
        ordinal: Any = _UNSET,
        token: int | None = None,
        queue_wait_ms: float = 0.0,
    ) -> None:
        """Run one task atom end-to-end: movement, retries, channels.

        ``ordinal``/``token`` are the concurrent scheduler's predicted
        fault-injection ordinal and backoff-jitter token; left at their
        defaults (sequential path, ProgressiveExecutor), the shared
        counters are consumed live.  ``queue_wait_ms`` is the scheduler's
        measured dispatch-to-start latency (0.0 on the sequential path);
        it is only recorded when profiling is enabled.
        """
        self._reject_if_quarantined(atom, runtime)
        profiler = self._profiler
        with maybe_span(
            metrics.ledger.tracer,
            f"atom#{atom.id}",
            KIND_EXECUTOR,
            atom=atom.id,
            platform=atom.platform.name,
            operators=len(atom.fragment),
        ) as span:
            probe = (
                profiler.start_atom(queue_wait_ms)
                if profiler is not None
                else None
            )
            external: dict[tuple[int, int], list[Any]] = {}
            ops_by_id = (
                {op.id: op for op in atom.fragment.operators}
                if self.columnar
                and self.columnar_native
                and atom.platform.columnar_native
                else None
            )
            elided = 0
            for (consumer_id, slot), producer_id in atom.external_inputs.items():
                try:
                    channel = channels[producer_id]
                except KeyError:
                    raise ExecutionError(
                        f"atom #{atom.id}: producer {producer_id} has no "
                        "channel (atom ordering bug)"
                    ) from None
                self._charge_movement(
                    channel, atom.platform, metrics, models, atom.id
                )
                consumers: tuple = ()
                if ops_by_id is not None:
                    consumer_op = ops_by_id.get(consumer_id)
                    if consumer_op is not None:
                        consumers = ((consumer_op, slot),)
                data = self._pull_channel(
                    channel, atom.platform, metrics, atom.id,
                    consumers=consumers,
                )
                if getattr(data, "is_columnar_batch", False):
                    elided += 1
                external[(consumer_id, slot)] = data
            if span is not None and elided:
                span.set(columnar_elided=elided)

            self._emit(ATOM_STARTED, metrics.ledger.tracer, atom=atom.id,
                       platform=atom.platform.name,
                       operators=len(atom.fragment))
            outputs, ledger = self._attempt_with_retries(
                atom, external, runtime, metrics, ordinal=ordinal, token=token
            )
            metrics.ledger.merge(ledger)
            metrics.atoms_executed += 1
            metrics.registry.counter(
                "atoms_by_platform", "atoms executed per platform"
            ).inc(platform=atom.platform.name)
            if span is not None:
                span.set(virtual_ms=ledger.total_ms)
            self._emit(
                ATOM_FINISHED,
                metrics.ledger.tracer,
                atom=atom.id,
                platform=atom.platform.name,
                virtual_ms=ledger.total_ms,
            )
            for op_id, data in outputs.items():
                channel = self._make_channel(op_id, data, atom, metrics)
                channels[op_id] = channel
                if probe is not None:
                    profiler.record_channel(
                        probe,
                        channel.payload_bytes(),
                        metrics.registry,
                        atom.platform.name,
                    )
                self._check_estimate(
                    op_id, len(data), metrics, platform=atom.platform.name
                )
            if probe is not None:
                profiler.finish_atom(
                    probe, span, metrics.registry, atom.platform.name
                )

    #: observed/estimated ratio beyond which an estimate counts as wrong
    MISESTIMATE_FACTOR = 4.0

    def _check_estimate(
        self,
        op_id: int,
        observed: int,
        metrics: ExecutionMetrics,
        platform: str | None = None,
    ) -> None:
        """Record estimates the observation contradicts (feedback the
        paper's execution monitoring enables and adaptive
        re-optimization consumes), plus — when the plan carries kind
        tags — one :class:`CalibrationObservation` per boundary for the
        cross-run :class:`CalibrationStore`."""
        estimated = getattr(self, "_estimates", {}).get(op_id)
        if estimated is None:
            return
        report = CardinalityMisestimate(op_id, estimated, observed)
        metrics.record_misestimate(
            report, contradicted=report.factor >= self.MISESTIMATE_FACTOR
        )
        kind = getattr(self, "_estimate_kinds", {}).get(op_id)
        if kind is not None and platform is not None:
            correction = getattr(self, "_estimate_corrections", {}).get(
                op_id, 1.0
            )
            metrics.record_calibration_observation(
                CalibrationObservation(
                    operator_id=op_id,
                    kind=kind,
                    platform=platform,
                    estimated=estimated,
                    observed=observed,
                    correction=correction,
                )
            )

    def _reject_if_quarantined(self, atom, runtime: RuntimeContext) -> None:
        """Fail fast — before movement or ``ATOM_STARTED`` — when the
        atom's platform circuit is open (e.g. this RuntimeContext saw
        the platform die in an earlier execution)."""
        if not self.failover:
            return
        platform_name = atom.platform.name
        health = runtime.health
        if health.is_available(platform_name):
            return
        error = PlatformDownError(
            f"platform {platform_name!r} is quarantined "
            f"(circuit {health.state(platform_name)})"
        )
        raise AtomExhaustedError(
            f"atom #{atom.id} on {platform_name!r} rejected: {error}",
            atom=atom,
            cause=error,
        )

    def _attempt_with_retries(
        self,
        atom: TaskAtom,
        external: dict[tuple[int, int], list[Any]],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
        *,
        ordinal: Any = _UNSET,
        token: int | None = None,
    ):
        """Run one atom with retry + backoff + breaker bookkeeping.

        Retries are counted (and ``ATOM_RETRIED`` emitted) only when
        another attempt actually runs.  :class:`PlatformDownError` skips
        the remaining same-platform retries — the platform is sick, not
        the atom.  Non-``ExecutionError`` exceptions escaping the
        platform are wrapped with atom/platform context so user errors
        hit the same retry/failover machinery.

        ``ordinal`` and ``token`` may be supplied by the concurrent
        scheduler (predicted in plan order, committed at replay);
        otherwise they are consumed live from the shared counters.
        """
        injector = runtime.failure_injector
        health = runtime.health
        platform_name = atom.platform.name
        if ordinal is _UNSET:
            ordinal = injector.next_atom() if injector is not None else None
        if token is None:
            # Jitter token: run-local atom sequence number, not ``atom.id``
            # — operator ids come from a process-global counter, so only
            # the sequence number makes backoff reproducible across runs.
            token = getattr(self, "_atom_seq", 0)
            self._atom_seq = token + 1

        last_error: ExecutionError | None = None
        attempts = 0
        tracer = metrics.ledger.tracer
        for attempt in range(self.max_retries + 1):
            attempts = attempt + 1
            attempt_span = (
                tracer.start_span(
                    f"attempt#{attempt + 1}",
                    KIND_EXECUTOR,
                    atom=atom.id,
                    platform=platform_name,
                    attempt=attempt + 1,
                )
                if tracer is not None and attempt > 0
                else None
            )
            try:
                if injector is not None:
                    slowdown = injector.slowdown_for(ordinal, platform_name)
                    if slowdown:
                        metrics.ledger.charge(
                            "inject.slowdown", slowdown, platform_name, atom.id
                        )
                    injector.check(ordinal, platform_name)
                if self.deadline_ms is None:
                    result = atom.platform.execute_atom(atom, external, runtime)
                else:
                    result = self._execute_with_deadline(
                        atom, external, runtime, metrics
                    )
            except ExecutionError as error:
                last_error = error
            except Exception as error:  # user code escaping the platform
                wrapped = ExecutionError(
                    f"atom #{atom.id} on {platform_name!r}: unhandled "
                    f"{type(error).__name__}: {error}"
                )
                wrapped.__cause__ = error
                last_error = wrapped
            else:
                if attempt_span is not None:
                    tracer.end_span(attempt_span)
                health.record_success(platform_name)
                return result
            if attempt_span is not None:
                attempt_span.set(error=str(last_error))
                tracer.end_span(attempt_span)

            permanent = isinstance(last_error, PlatformDownError)
            health.record_failure(platform_name, permanent=permanent)
            if permanent or attempt >= self.max_retries:
                break
            delay = self.backoff.delay_ms(attempt, token=token)
            metrics.ledger.charge(
                "retry.backoff", delay, platform_name, atom.id
            )
            metrics.backoff_ms += delay
            metrics.retries += 1
            health.advance(delay)
            self._emit(
                ATOM_RETRIED,
                tracer,
                atom=atom.id,
                platform=platform_name,
                attempt=attempt + 1,
                backoff_ms=delay,
                transient=isinstance(last_error, TransientError),
                error=str(last_error),
            )
        raise AtomExhaustedError(
            f"atom #{atom.id} on {platform_name!r} failed after "
            f"{attempts} attempts: {last_error}",
            atom=atom,
            cause=last_error,
        )

    def _execute_with_deadline(
        self,
        atom: TaskAtom,
        external: dict[tuple[int, int], list[Any]],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
    ):
        """Run ``execute_atom`` under a wall-clock deadline.

        The call runs on a daemon worker joined for ``deadline_ms`` of
        real time, against a runtime clone whose tracer is a private
        shard — the platform attaches its atom ledger to
        ``runtime.tracer``, so a zombie overrun keeps writing only into
        the abandoned shard, never the live trace.  On success the shard
        grafts back (byte-identical to an un-deadlined run); on timeout
        the deadline itself is charged as virtual time and the overrun
        escalates like a platform outage (:class:`AtomDeadlineError` is
        a :class:`PlatformDownError`: breaker, then failover).
        """
        from repro.core.observability.spans import Tracer

        tracer = getattr(runtime, "tracer", None)
        shard = Tracer() if tracer is not None else None
        shadow = _DeadlineRuntime(runtime, shard)
        box: dict[str, Any] = {}

        def call() -> None:
            try:
                box["result"] = atom.platform.execute_atom(
                    atom, external, shadow
                )
            except BaseException as error:  # rethrown on the caller thread
                box["error"] = error

        worker = threading.Thread(
            target=call, name=f"repro-deadline-atom-{atom.id}", daemon=True
        )
        worker.start()
        worker.join(self.deadline_ms / 1000.0)
        if worker.is_alive():
            # Abandon the zombie; bill the deadline as the time we
            # *observably* lost waiting on the wedged platform.
            metrics.ledger.charge(
                "deadline.exceeded",
                self.deadline_ms,
                atom.platform.name,
                atom.id,
            )
            metrics.deadline_kills += 1
            self._emit(
                ATOM_TIMED_OUT,
                metrics.ledger.tracer,
                atom=atom.id,
                platform=atom.platform.name,
                deadline_ms=self.deadline_ms,
            )
            raise AtomDeadlineError(
                f"atom #{atom.id} on {atom.platform.name!r} exceeded its "
                f"{self.deadline_ms:g}ms deadline"
            )
        if shard is not None:
            # Graft even for failed attempts: their spans/charges belong
            # in the trace exactly as they would without a deadline.
            tracer.graft(shard, parent=tracer.current)
            tracer.registry.merge_from(shard.registry)
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _run_loop_atom(
        self,
        atom: LoopAtom,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
        models: dict[str, Any],
    ) -> None:
        repeat = atom.repeat
        try:
            state_channel = channels[atom.state_producer_id]
        except KeyError:
            raise ExecutionError(
                f"loop atom #{atom.id}: initial state channel missing"
            ) from None
        loop_span_cm = maybe_span(
            metrics.ledger.tracer,
            f"loop#{atom.id}",
            KIND_EXECUTOR,
            atom=atom.id,
            platform=atom.platform.name,
        )
        with loop_span_cm as loop_span:
            self._run_loop_body(
                atom, repeat, state_channel, channels, runtime, metrics,
                models, loop_span,
            )

    def _run_loop_body(
        self,
        atom: LoopAtom,
        repeat,
        state_channel: CollectionChannel,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
        models: dict[str, Any],
        loop_span=None,
    ) -> None:
        self._charge_movement(state_channel, atom.platform, metrics, models, atom.id)
        # Loop-state elision: when the body's consumers of the bound
        # state can all read the columnar layout natively (and no loop
        # condition needs rows), the per-iteration state recirculation
        # stays columnar end-to-end — pack (columnar.ingest), elide
        # (columnar.egest + columnar.elide), rebind — with the exact
        # charges of the egest path.
        state_consumers: tuple = ()
        if (
            self.columnar
            and self.columnar_native
            and atom.platform.columnar_native
        ):
            body_consumers = loop_state_consumers(atom)
            if body_consumers:
                state_consumers = tuple(body_consumers)
        state = self._pull_channel(
            state_channel, atom.platform, metrics, atom.id,
            consumers=state_consumers,
        )
        elided = 0
        if getattr(state, "is_columnar_batch", False):
            elided += 1
        else:
            state = list(state)

        iterations_before = metrics.loop_iterations
        previous_caching = runtime.caching_enabled
        runtime.caching_enabled = True
        try:
            bound = (
                repeat.times if repeat.times is not None else repeat.max_iterations
            )
            for _iteration in range(bound):
                metrics.ledger.charge(
                    "loop.sync",
                    atom.platform.cost_model.loop_iteration_ms(),
                    atom.platform.name,
                    atom.id,
                )
                runtime.bound_sources[repeat.body_input.id] = state
                body_channels: dict[int, CollectionChannel] = {}
                self._run_atoms(
                    atom.body_plan, body_channels, runtime, metrics, models
                )
                try:
                    state_out = body_channels[repeat.body_output.id]
                except KeyError:
                    raise ExecutionError(
                        f"loop atom #{atom.id}: body produced no output channel"
                    ) from None
                state = self._pull_channel(
                    state_out, atom.platform, metrics, atom.id,
                    consumers=state_consumers,
                )
                if getattr(state, "is_columnar_batch", False):
                    elided += 1
                metrics.loop_iterations += 1
                self._emit(
                    LOOP_ITERATION,
                    metrics.ledger.tracer,
                    atom=atom.id,
                    platform=atom.platform.name,
                    iteration=metrics.loop_iterations,
                    state_card=len(state),
                )
                if repeat.condition is not None and repeat.condition(state):
                    break
        finally:
            runtime.caching_enabled = previous_caching
            runtime.bound_sources.pop(repeat.body_input.id, None)
        if loop_span is not None:
            loop_span.set(
                iterations=metrics.loop_iterations - iterations_before,
                state_card=len(state),
            )
            if elided:
                loop_span.set(columnar_elided=elided)
        channels[repeat.id] = self._make_channel(repeat.id, state, atom, metrics)
