"""Flexible operator mappings (paper §3.1, "Flexible operator mappings").

The registry records, declaratively, which physical operators can
implement each logical operator type.  Developers plugging in a new
application register new logical operator types here; the first registered
factory is the *default* variant and the rest become ``alternates`` the
multi-platform optimizer may substitute on cost grounds (e.g.
``HashGroupBy`` versus ``SortGroupBy`` from Example 2).

The physical→execution half of the mapping lives with each platform
(:class:`repro.platforms.base.Platform`), because it is the platform
developer who declares which physical operators their engine supports.
"""

from __future__ import annotations

from typing import Callable

from repro.core.logical.operators import (
    CollectionSource,
    CollectSink,
    Count,
    CrossProduct,
    Distinct,
    Filter,
    FlatMap,
    GlobalReduce,
    GroupBy,
    Join,
    Limit,
    LogicalOperator,
    LoopInput,
    Map,
    ReduceBy,
    Sample,
    Sort,
    TableSource,
    TextFileSource,
    Union,
    ZipWithId,
)
from repro.core.physical import operators as phys
from repro.errors import MappingError

#: Builds a physical operator from the logical operator it implements.
PhysicalFactory = Callable[[LogicalOperator], phys.PhysicalOperator]


class OperatorMappings:
    """Declarative logical→physical mapping registry."""

    def __init__(self) -> None:
        self._factories: dict[type[LogicalOperator], list[PhysicalFactory]] = {}

    def register(
        self,
        logical_type: type[LogicalOperator],
        factory: PhysicalFactory,
        *,
        prepend: bool = False,
    ) -> None:
        """Register ``factory`` as an implementation of ``logical_type``.

        ``prepend=True`` makes the new factory the default variant — this
        is how an application promotes a specialised operator (the data
        cleaning application does this with ``IEJoin``).
        """
        factories = self._factories.setdefault(logical_type, [])
        if prepend:
            factories.insert(0, factory)
        else:
            factories.append(factory)

    def has_mapping(self, logical_type: type[LogicalOperator]) -> bool:
        """Whether ``logical_type`` itself has registered factories."""
        return logical_type in self._factories

    def candidates(self, logical: LogicalOperator) -> list[phys.PhysicalOperator]:
        """Instantiate every registered physical variant for ``logical``.

        The most specific registered class in the operator's MRO wins, so
        an application subclass of ``Join`` with its own mapping shadows
        the generic join mapping.
        """
        for klass in type(logical).__mro__:
            if klass in self._factories:
                return [factory(logical) for factory in self._factories[klass]]
        raise MappingError(
            f"no logical->physical mapping registered for {type(logical).__name__}"
        )

    def copy(self) -> "OperatorMappings":
        """A shallow copy applications can extend without global effects."""
        clone = OperatorMappings()
        clone._factories = {k: list(v) for k, v in self._factories.items()}
        return clone


def default_mappings() -> OperatorMappings:
    """The built-in mapping table covering the generic operator library."""
    mappings = OperatorMappings()
    mappings.register(CollectionSource, phys.PCollectionSource)
    mappings.register(TextFileSource, phys.PTextFileSource)
    mappings.register(TableSource, phys.PTableSource)
    mappings.register(LoopInput, phys.PLoopInput)
    mappings.register(CollectSink, phys.PCollectSink)
    mappings.register(Map, phys.PMap)
    mappings.register(FlatMap, phys.PFlatMap)
    mappings.register(Filter, phys.PFilter)
    mappings.register(ZipWithId, phys.PZipWithId)
    mappings.register(GroupBy, phys.PHashGroupBy)
    mappings.register(GroupBy, phys.PSortGroupBy)
    mappings.register(ReduceBy, phys.PReduceBy)
    mappings.register(GlobalReduce, phys.PGlobalReduce)
    mappings.register(Join, phys.PHashJoin)
    mappings.register(Join, phys.PSortMergeJoin)
    mappings.register(Join, phys.PBroadcastJoin)
    mappings.register(CrossProduct, phys.PCrossProduct)
    mappings.register(Union, phys.PUnion)
    mappings.register(Sort, phys.PSort)
    mappings.register(Distinct, phys.PHashDistinct)
    mappings.register(Distinct, phys.PSortDistinct)
    mappings.register(Sample, phys.PSample)
    mappings.register(Count, phys.PCount)
    mappings.register(Limit, phys.PLimit)
    # Repeat is translated structurally by the application optimizer (its
    # body must be translated recursively), so it is not registered here.
    return mappings
