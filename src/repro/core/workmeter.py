"""Run-time UDF work metering.

Static cost hints cannot express data-dependent UDF work — the classic
case being a detection UDF that internally enumerates O(n²) candidate
pairs (the single-Detect-UDF baseline of the paper's Figure 3).  UDFs can
therefore *report* the work they actually perform::

    from repro.core.workmeter import report_work
    ...
    report_work(2.0 * candidates_checked)

The platform atom interpreter drains the meter around each operator run
and converts reported units into virtual time through the platform cost
model — on the simulated Spark per partition, so a task that hogs all the
work is priced as the straggler it would be on a real cluster.

The meter is a **thread-local** accumulator: the concurrent DAG scheduler
(:mod:`repro.core.scheduler`) runs task atoms on worker threads, and each
worker's operators must only ever see the work their own UDFs reported.
Within one thread the semantics are unchanged from the original
module-level accumulator.
"""

from __future__ import annotations

import threading

_local = threading.local()


def report_work(units: float) -> None:
    """Add ``units`` of UDF work to the meter (1 unit ≈ one tuple op)."""
    _local.accumulated = getattr(_local, "accumulated", 0.0) + units


def drain_work() -> float:
    """Return and reset the accumulated units (calling thread only)."""
    units = getattr(_local, "accumulated", 0.0)
    _local.accumulated = 0.0
    return units


def peek_work() -> float:
    """Current accumulated units for this thread (for tests)."""
    return getattr(_local, "accumulated", 0.0)
