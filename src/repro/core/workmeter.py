"""Run-time UDF work metering.

Static cost hints cannot express data-dependent UDF work — the classic
case being a detection UDF that internally enumerates O(n²) candidate
pairs (the single-Detect-UDF baseline of the paper's Figure 3).  UDFs can
therefore *report* the work they actually perform::

    from repro.core.workmeter import report_work
    ...
    report_work(2.0 * candidates_checked)

The platform atom interpreter drains the meter around each operator run
and converts reported units into virtual time through the platform cost
model — on the simulated Spark per partition, so a task that hogs all the
work is priced as the straggler it would be on a real cluster.

The meter is a module-level accumulator; execution in this library is
single-threaded by construction (the simulated platforms model
parallelism in virtual time, not with OS threads).
"""

from __future__ import annotations

_accumulated = 0.0


def report_work(units: float) -> None:
    """Add ``units`` of UDF work to the meter (1 unit ≈ one tuple op)."""
    global _accumulated
    _accumulated += units


def drain_work() -> float:
    """Return and reset the accumulated units."""
    global _accumulated
    units = _accumulated
    _accumulated = 0.0
    return units


def peek_work() -> float:
    """Current accumulated units (for tests)."""
    return _accumulated
