"""Execution monitoring (paper §4.2: the Executor is responsible for
"monitoring the progress of plan execution").

Listeners receive structured events as the Executor schedules atoms,
retries failures, iterates loops and finishes plans.  They power progress
reporting (:class:`ConsoleProgressListener`), testing
(:class:`RecordingListener`) and whatever applications need (timeouts,
dashboards, audit logs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: event kinds emitted by the Executor
EXECUTION_STARTED = "execution_started"
ATOM_STARTED = "atom_started"
ATOM_FINISHED = "atom_finished"
ATOM_RETRIED = "atom_retried"
#: a platform's circuit breaker opened; it receives no further atoms
#: this run (details: platform, atom, cooldown_ms, error)
PLATFORM_QUARANTINED = "platform_quarantined"
#: the remaining plan suffix was re-planned off a sick platform
#: (details: atom, from_platform, remaining_atoms, error)
ATOM_FAILED_OVER = "atom_failed_over"
LOOP_ITERATION = "loop_iteration"
EXECUTION_FINISHED = "execution_finished"
#: a crashed run's journal prefix was replayed instead of re-executed
#: (details: run_id, atoms_restored, atoms_total, torn_records).
#: Listener-only: resume must not add tracer events an uninterrupted
#: run would not have.
RUN_RESUMED = "run_resumed"
#: an atom overran its wall-clock deadline and was abandoned
#: (details: atom, platform, deadline_ms)
ATOM_TIMED_OUT = "atom_timed_out"


@dataclass(frozen=True)
class ExecutionEvent:
    """One monitoring event.

    ``details`` carries event-specific fields: atom id and platform for
    atom events, iteration counters for loops, totals for the finish
    event.
    """

    kind: str
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"{self.kind}({parts})"


class ExecutionListener:
    """Base class; override :meth:`on_event` (default: ignore)."""

    def on_event(self, event: ExecutionEvent) -> None:
        """Receive one event.  Exceptions raised here are *not* swallowed
        — a listener that throws aborts the execution, which is what a
        deadline/timeout listener wants."""


class RecordingListener(ExecutionListener):
    """Keeps every event; the test and debugging workhorse."""

    def __init__(self) -> None:
        self.events: list[ExecutionEvent] = []

    def on_event(self, event: ExecutionEvent) -> None:
        self.events.append(event)

    def kinds(self) -> list[str]:
        """The event kinds in arrival order."""
        return [event.kind for event in self.events]

    def count(self, kind: str) -> int:
        """How many events of ``kind`` arrived."""
        return sum(1 for event in self.events if event.kind == kind)


class ConsoleProgressListener(ExecutionListener):
    """Prints one line per event (atom granularity).

    Each line carries a monotonically increasing event sequence number
    and the wall time elapsed since the listener saw its first event,
    and the stream is flushed per event — so progress stays visible
    under pytest ``-s`` and when piped through a pager or ``tee``.
    """

    def __init__(self, stream=None):
        import sys

        self.stream = stream or sys.stderr
        #: events printed so far (also the next line's sequence number)
        self.seq = 0
        self._started: float | None = None

    def on_event(self, event: ExecutionEvent) -> None:
        import time

        now = time.perf_counter()
        if self._started is None:
            self._started = now
        elapsed_ms = (now - self._started) * 1000.0
        print(
            f"[rheem] #{self.seq:04d} +{elapsed_ms:.1f}ms {event}",
            file=self.stream,
        )
        self.seq += 1
        flush = getattr(self.stream, "flush", None)
        if flush is not None:
            flush()


class VirtualBudgetListener(ExecutionListener):
    """Aborts the execution when spent virtual time exceeds a budget.

    The monitoring-driven control the Executor enables: the listener sees
    each atom's cost as it lands and raises once the budget is blown —
    useful to bound runaway baseline plans.
    """

    def __init__(self, budget_ms: float):
        self.budget_ms = budget_ms
        self.spent_ms = 0.0

    def on_event(self, event: ExecutionEvent) -> None:
        from repro.errors import ExecutionError

        if event.kind == ATOM_FINISHED:
            self.spent_ms += event.details.get("virtual_ms", 0.0)
            if self.spent_ms > self.budget_ms:
                raise ExecutionError(
                    f"virtual budget exceeded: {self.spent_ms:.1f}ms "
                    f"> {self.budget_ms:.1f}ms"
                )
