"""RHEEM core: the three-layer data processing abstraction.

Sub-packages follow the paper's layering (Figure 1):

* :mod:`repro.core.logical` — application-layer operators and plans;
* :mod:`repro.core.physical` — core-layer, platform-independent operator
  pool (with algorithmic variants);
* :mod:`repro.core.execution` — execution plans of task atoms;
* :mod:`repro.core.optimizer` — the application optimizer and the
  multi-platform task optimizer with pluggable rules and cost models;
* :mod:`repro.core.executor` — scheduling, monitoring, failure handling;
* :mod:`repro.core.context` — the fluent end-user API.
"""

from repro.core.context import DataQuanta, RheemContext
from repro.core.executor import ExecutionResult, Executor
from repro.core.metrics import ExecutionMetrics
from repro.core.resilience import (
    BackoffPolicy,
    FailureInjector,
    HealthTracker,
    PlatformHealth,
)
from repro.core.runtime import RuntimeContext
from repro.core.types import Record, Schema

__all__ = [
    "BackoffPolicy",
    "DataQuanta",
    "ExecutionMetrics",
    "ExecutionResult",
    "Executor",
    "FailureInjector",
    "HealthTracker",
    "PlatformHealth",
    "Record",
    "RheemContext",
    "RuntimeContext",
    "Schema",
]
