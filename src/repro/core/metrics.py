"""Execution metrics and the virtual-time ledger.

The executor monitors task-atom execution (paper §4.2: the Executor is
responsible for "monitoring the progress of plan execution") and accounts
*virtual time*: the simulated platform cost models evaluated with the
cardinalities actually observed at run time.  See DESIGN.md §2 for why
time is virtual while results are real.

Since the observability subsystem landed, the ledger doubles as the
virtual *clock source* for tracing — a :class:`CostLedger` with a tracer
attached notifies it on every charge, which is how span virtual
durations stay reconciled with ledger totals — and
:class:`ExecutionMetrics` is a **view over a
**:class:`~repro.core.observability.registry.MetricsRegistry` rather
than a parallel bookkeeping path: its counters are registry-backed
properties, so everything the executor accounts is immediately
exportable in Prometheus format.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.observability.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.observability.spans import Tracer


@dataclass(frozen=True)
class CostEntry:
    """One priced event: an operator run, a data movement, an overhead."""

    label: str
    ms: float
    platform: str
    atom_id: int | None = None
    #: serving attribution: which tenant's query charged this entry.
    #: Stamped post-run by the serving daemon and excluded from
    #: equality so byte-identity contracts across runs are unaffected.
    tenant: str | None = field(default=None, compare=False)


@dataclass
class CostLedger:
    """Append-only list of cost entries; cheap to merge.

    When a :class:`~repro.core.observability.spans.Tracer` is attached
    (``ledger.tracer = tracer``), every ``charge`` advances the tracer's
    virtual clock — making the ledger the single source of virtual time
    for span durations.  ``merge`` deliberately does *not* re-notify:
    entries merged from another ledger were already clocked when they
    were charged (both ledgers of a traced run share the tracer).
    """

    entries: list[CostEntry] = field(default_factory=list)
    #: optional tracer notified per charge (excluded from comparisons)
    tracer: "Tracer | None" = field(default=None, repr=False, compare=False)

    def charge(
        self, label: str, ms: float, platform: str, atom_id: int | None = None
    ) -> None:
        """Record ``ms`` of virtual time under ``label``."""
        entry = CostEntry(label, ms, platform, atom_id)
        self.entries.append(entry)
        if self.tracer is not None:
            self.tracer.record_charge(entry)

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's entries into this one (no re-clocking)."""
        self.entries.extend(other.entries)

    @property
    def total_ms(self) -> float:
        return sum(entry.ms for entry in self.entries)


#: bucket bounds shared by the run-level ``misestimate_factor`` histogram
#: and the calibration store's per-kind factor priors (folded factors are
#: always >= 1, roughly exponential)
MISESTIMATE_BUCKETS = (1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0)


@dataclass(frozen=True)
class CardinalityMisestimate:
    """An optimizer estimate that run-time observation contradicted.

    Collected by the Executor at atom boundaries (the only places where
    cardinalities are observable without extra passes); the feedback the
    paper's monitoring enables and that adaptive re-optimization would
    consume.
    """

    operator_id: int
    estimated: float
    observed: int

    @property
    def factor(self) -> float:
        """How far off the estimate was (always >= 1)."""
        if self.observed == 0 or self.estimated == 0:
            return float("inf") if self.observed != self.estimated else 1.0
        ratio = self.observed / self.estimated
        return ratio if ratio >= 1.0 else 1.0 / ratio


@dataclass(frozen=True)
class CalibrationObservation:
    """One estimate/observation pair tagged for cross-run learning.

    Recorded by the Executor for *every* boundary cardinality it can
    compare (not just contradicted ones), in deterministic plan order —
    the concurrent scheduler extends the list at journal replay, so the
    sequence is identical at any parallelism.  A
    :class:`~repro.core.optimizer.calibration.CalibrationStore` folds
    these into per-operator-kind/per-platform priors.

    ``correction`` is the factor the calibrated estimator already applied
    to ``estimated`` at plan time; the store divides it back out so
    priors always describe the *raw* estimator's bias (otherwise
    corrections would dilute themselves run over run).
    """

    operator_id: int
    kind: str
    platform: str
    estimated: float
    observed: int
    correction: float = 1.0

    @property
    def factor(self) -> float:
        """Residual (post-correction) folded misestimate factor."""
        return CardinalityMisestimate(
            self.operator_id, self.estimated, self.observed
        ).factor


class _RegistryBacked:
    """Descriptor: an ExecutionMetrics field backed by a registry series.

    ``metrics.retries += 1`` reads and writes the registry counter of the
    same name — this is what makes ExecutionMetrics a *view* over the
    registry instead of a second bookkeeping path.
    """

    def __init__(self, name: str, help: str = "", as_int: bool = True):
        self.name = name
        self.help = help
        self.as_int = as_int

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        value = obj.registry.counter(self.name, self.help).value()
        return int(value) if self.as_int else value

    def __set__(self, obj, value) -> None:
        obj.registry.counter(self.name, self.help).set(value)


class ExecutionMetrics:
    """What one plan execution cost, and where the time went.

    A thin facade: virtual time lives in the :class:`CostLedger`,
    counters live in a
    :class:`~repro.core.observability.registry.MetricsRegistry` (pass a
    shared one — e.g. ``tracer.registry`` — to aggregate across runs or
    export alongside a trace).
    """

    #: number of task atoms executed (loop bodies counted per iteration)
    atoms_executed = _RegistryBacked("atoms_executed", "task atoms executed")
    #: number of atom retries performed after injected/real failures
    retries = _RegistryBacked("retries", "atom retries after failures")
    #: virtual ms spent backing off between retries (also in the ledger
    #: under ``retry.backoff``)
    backoff_ms = _RegistryBacked(
        "backoff_ms", "virtual ms spent in retry backoff", as_int=False
    )
    #: mid-run failovers: plan suffixes re-planned off a sick platform
    failovers = _RegistryBacked("failovers", "mid-run plan-suffix failovers")
    #: platforms quarantined (circuit breaker opened) during the run
    quarantines = _RegistryBacked("quarantines", "platform quarantines")
    #: atoms skipped because their outputs were restored from a checkpoint
    atoms_skipped = _RegistryBacked(
        "atoms_skipped", "atoms restored from checkpoint"
    )
    #: loop iterations executed across all loop atoms
    loop_iterations = _RegistryBacked(
        "loop_iterations", "loop iterations executed"
    )
    #: crashed runs resumed from a durable journal (0 or 1 per execution)
    resumes = _RegistryBacked("resumes", "runs resumed from a run journal")
    #: atoms replayed from the journal instead of re-executed on resume
    atoms_restored = _RegistryBacked(
        "atoms_restored", "atoms replayed from the run journal"
    )
    #: atoms abandoned for overrunning their wall-clock deadline
    deadline_kills = _RegistryBacked(
        "deadline_kills", "atoms killed by the per-atom deadline"
    )

    def __init__(
        self,
        ledger: CostLedger | None = None,
        wall_ms: float = 0.0,
        registry: MetricsRegistry | None = None,
    ):
        self.ledger = ledger if ledger is not None else CostLedger()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.wall_ms = wall_ms
        #: critical-path virtual time: the longest dependency chain of
        #: atom costs (plus serialized overheads).  Equals
        #: :attr:`virtual_ms` for a fully sequential chain; strictly less
        #: when independent atoms could overlap.  Filled by the Executor.
        self.makespan_ms = 0.0
        #: estimates the observed boundary cardinalities contradicted (>=4x off)
        self.misestimates: list[CardinalityMisestimate] = []
        #: every boundary estimate/observation pair, tagged with operator
        #: kind + platform (+ the correction factor already applied) —
        #: the feed the cross-run CalibrationStore ingests.  Deterministic
        #: order: plan order sequentially, journal-replay order under the
        #: concurrent scheduler.
        self.calibration_observations: list[CalibrationObservation] = []

    # ------------------------------------------------------------------
    @property
    def virtual_ms(self) -> float:
        """Total simulated execution time."""
        return self.ledger.total_ms

    def by_platform(self) -> dict[str, float]:
        """Virtual milliseconds grouped by platform name."""
        totals: dict[str, float] = {}
        for entry in self.ledger.entries:
            totals[entry.platform] = totals.get(entry.platform, 0.0) + entry.ms
        return totals

    def by_label(self) -> dict[str, float]:
        """Virtual milliseconds grouped by full charge label.

        The full-breakdown companion of :meth:`by_label_prefix`: every
        distinct ledger label with its total, e.g.
        ``{"op.map": 3.2, "move.java->spark": 1.1, "startup": 5.0}``.
        """
        totals: dict[str, float] = {}
        for entry in self.ledger.entries:
            totals[entry.label] = totals.get(entry.label, 0.0) + entry.ms
        return totals

    def by_label_prefix(self, prefix: str) -> float:
        """Sum of entries whose label starts with ``prefix``.

        Useful prefixes: ``move`` (inter-platform transfers), ``startup``,
        ``op.`` (operator compute), ``loop`` (iteration overheads).
        """
        return sum(e.ms for e in self.ledger.entries if e.label.startswith(prefix))

    @property
    def movement_ms(self) -> float:
        """Virtual time spent moving data between platforms."""
        return self.by_label_prefix("move")

    # ------------------------------------------------------------------
    def record_misestimate(
        self, report: CardinalityMisestimate, contradicted: bool = True
    ) -> None:
        """Register an estimate/observation comparison.

        Every finite factor feeds the ``misestimate_factor`` histogram
        (the signal adaptive re-optimization consumes); only
        ``contradicted`` reports join :attr:`misestimates`.
        """
        if math.isfinite(report.factor):
            self.registry.histogram(
                "misestimate_factor",
                "observed/estimated cardinality discrepancy factor",
                buckets=MISESTIMATE_BUCKETS,
            ).observe(report.factor)
        if contradicted:
            self.misestimates.append(report)

    def record_calibration_observation(
        self, observation: CalibrationObservation
    ) -> None:
        """Append one kind/platform-tagged boundary observation."""
        self.calibration_observations.append(observation)

    def observe_movement(self, pair: str, ms: float) -> None:
        """Feed the per-platform-pair movement histogram."""
        self.registry.histogram(
            "movement_ms", "virtual ms per inter-platform transfer"
        ).observe(ms, pair=pair)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable one-paragraph summary.

        Resilience and checkpoint/loop counters appear only when
        non-zero, but none of them are silently dropped any more:
        ``backoff_ms``, ``atoms_skipped`` and ``loop_iterations`` all
        surface when they carry signal.
        """
        platform_part = ", ".join(
            f"{name}={ms:.1f}ms" for name, ms in sorted(self.by_platform().items())
        )
        extras = []
        if self.makespan_ms:
            extras.append(f"makespan={self.makespan_ms:.1f}ms")
        if self.backoff_ms:
            extras.append(f"backoff={self.backoff_ms:.1f}ms")
        if self.failovers or self.quarantines:
            extras.append(
                f"failovers={self.failovers} quarantines={self.quarantines}"
            )
        if self.atoms_skipped:
            extras.append(f"atoms_skipped={self.atoms_skipped}")
        if self.loop_iterations:
            extras.append(f"loop_iterations={self.loop_iterations}")
        if self.resumes:
            extras.append(
                f"resumes={self.resumes} atoms_restored={self.atoms_restored}"
            )
        if self.deadline_kills:
            extras.append(f"deadline_kills={self.deadline_kills}")
        extra_part = (" " + " ".join(extras)) if extras else ""
        return (
            f"virtual={self.virtual_ms:.1f}ms (movement={self.movement_ms:.1f}ms) "
            f"[{platform_part}] atoms={self.atoms_executed} "
            f"retries={self.retries}{extra_part} wall={self.wall_ms:.1f}ms"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionMetrics({self.summary()})"
