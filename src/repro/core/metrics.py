"""Execution metrics and the virtual-time ledger.

The executor monitors task-atom execution (paper §4.2: the Executor is
responsible for "monitoring the progress of plan execution") and accounts
*virtual time*: the simulated platform cost models evaluated with the
cardinalities actually observed at run time.  See DESIGN.md §2 for why
time is virtual while results are real.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostEntry:
    """One priced event: an operator run, a data movement, an overhead."""

    label: str
    ms: float
    platform: str
    atom_id: int | None = None


@dataclass
class CostLedger:
    """Append-only list of cost entries; cheap to merge."""

    entries: list[CostEntry] = field(default_factory=list)

    def charge(
        self, label: str, ms: float, platform: str, atom_id: int | None = None
    ) -> None:
        """Record ``ms`` of virtual time under ``label``."""
        self.entries.append(CostEntry(label, ms, platform, atom_id))

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's entries into this one."""
        self.entries.extend(other.entries)

    @property
    def total_ms(self) -> float:
        return sum(entry.ms for entry in self.entries)


@dataclass(frozen=True)
class CardinalityMisestimate:
    """An optimizer estimate that run-time observation contradicted.

    Collected by the Executor at atom boundaries (the only places where
    cardinalities are observable without extra passes); the feedback the
    paper's monitoring enables and that adaptive re-optimization would
    consume.
    """

    operator_id: int
    estimated: float
    observed: int

    @property
    def factor(self) -> float:
        """How far off the estimate was (always >= 1)."""
        if self.observed == 0 or self.estimated == 0:
            return float("inf") if self.observed != self.estimated else 1.0
        ratio = self.observed / self.estimated
        return ratio if ratio >= 1.0 else 1.0 / ratio


@dataclass
class ExecutionMetrics:
    """What one plan execution cost, and where the time went."""

    ledger: CostLedger = field(default_factory=CostLedger)
    wall_ms: float = 0.0
    #: number of task atoms executed (loop bodies counted per iteration)
    atoms_executed: int = 0
    #: number of atom retries performed after injected/real failures
    retries: int = 0
    #: virtual ms spent backing off between retries (also in the ledger
    #: under ``retry.backoff``)
    backoff_ms: float = 0.0
    #: mid-run failovers: plan suffixes re-planned off a sick platform
    failovers: int = 0
    #: platforms quarantined (circuit breaker opened) during the run
    quarantines: int = 0
    #: atoms skipped because their outputs were restored from a checkpoint
    atoms_skipped: int = 0
    #: loop iterations executed across all loop atoms
    loop_iterations: int = 0
    #: estimates the observed boundary cardinalities contradicted (>=4x off)
    misestimates: list[CardinalityMisestimate] = field(default_factory=list)

    @property
    def virtual_ms(self) -> float:
        """Total simulated execution time."""
        return self.ledger.total_ms

    def by_platform(self) -> dict[str, float]:
        """Virtual milliseconds grouped by platform name."""
        totals: dict[str, float] = {}
        for entry in self.ledger.entries:
            totals[entry.platform] = totals.get(entry.platform, 0.0) + entry.ms
        return totals

    def by_label_prefix(self, prefix: str) -> float:
        """Sum of entries whose label starts with ``prefix``.

        Useful prefixes: ``move`` (inter-platform transfers), ``startup``,
        ``op.`` (operator compute), ``loop`` (iteration overheads).
        """
        return sum(e.ms for e in self.ledger.entries if e.label.startswith(prefix))

    @property
    def movement_ms(self) -> float:
        """Virtual time spent moving data between platforms."""
        return self.by_label_prefix("move")

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        platform_part = ", ".join(
            f"{name}={ms:.1f}ms" for name, ms in sorted(self.by_platform().items())
        )
        resilience_part = ""
        if self.failovers or self.quarantines:
            resilience_part = (
                f" failovers={self.failovers} quarantines={self.quarantines}"
            )
        return (
            f"virtual={self.virtual_ms:.1f}ms (movement={self.movement_ms:.1f}ms) "
            f"[{platform_part}] atoms={self.atoms_executed} "
            f"retries={self.retries}{resilience_part} wall={self.wall_ms:.1f}ms"
        )
