"""LRU cache of optimized execution plans, keyed by fingerprint × epochs.

Cross-platform plan search is the expensive step of every query (RHEEMix
makes the same observation for its enumeration algebra), yet serving
traffic repeats the same handful of query shapes millions of times.  The
cache memoizes the optimizer's *output* — the cut
:class:`~repro.core.execution.plan.ExecutionPlan` — under a key that
changes whenever anything that influenced enumeration changes:

* the logical plan fingerprint (structure, UDF code **and** source
  data — see :mod:`repro.core.optimizer.fingerprint`),
* the forced platform, if any,
* the calibration-store epoch (priors moved ⇒ the estimator moved ⇒
  every memoized plan may be stale),
* the executor config epoch (columnar / kernel / calibration toggles
  change what the enumerator is allowed to choose).

A hit therefore always replays a plan that today's optimizer would have
produced; invalidation is by key, so flipping an epoch back never
resurrects a plan enumerated under different priors for the *new* epoch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable


def plan_cache_key(
    fingerprint: str,
    platform: str | None,
    calibration_epoch: int,
    config_epoch: str,
) -> tuple:
    """Compose the full cache key for one optimizer invocation."""
    return (fingerprint, platform, calibration_epoch, config_epoch)


class PlanCache:
    """Thread-safe LRU map from :func:`plan_cache_key` to execution plans.

    ``get`` refreshes recency; ``put`` evicts the least-recently-used
    entry once ``capacity`` is exceeded.  Hit/miss/eviction counts are
    exposed for the serving registry.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Any | None:
        """Return the cached plan for ``key`` (refreshing recency), or None."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries over capacity."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list:
        """Current keys, least-recently-used first (for tests/inspection)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
