"""The ``repro serve`` daemon: multi-tenant query serving over HTTP.

Same stdlib shape as
:class:`~repro.core.observability.server.MetricsHTTPServer` — a
:class:`~http.server.ThreadingHTTPServer` on a daemon thread, no
framework — but serving *queries* instead of scrapes:

* ``POST /submit`` — run a workload spec (``{"workload": ..., ...}``,
  see :mod:`repro.core.serving.workloads`) for the tenant named by the
  ``X-Repro-Tenant`` header; answers with the query summary (id,
  ``plan_cache`` hit/miss, virtual/wall time).
* ``GET /status/<id>`` — summary of a submitted query.
* ``GET /result/<id>`` — full payload: rows, tenant-tagged ledger,
  span names, enumeration-span count.
* ``GET /healthz`` — liveness; ``GET /metrics`` — the serving
  registry's Prometheus exposition (every series tenant-labelled).

Requests run synchronously on their handler thread.  Per tenant there
is one :class:`~repro.core.context.RheemContext` session (queries of
one tenant serialize on the session lock; different tenants run
concurrently); all sessions share the daemon's
:class:`~repro.core.serving.plan_cache.PlanCache` and
:class:`~repro.core.serving.admission.PlatformSlotPool`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.core.context import RheemContext
from repro.core.observability.export import prometheus_text
from repro.core.observability.registry import MetricsRegistry, set_build_info
from repro.core.observability.spans import Tracer
from repro.core.serving.admission import PlatformSlotPool
from repro.core.serving.plan_cache import PlanCache
from repro.core.serving.sessions import SessionManager, TenantSession
from repro.core.serving.workloads import build_workload
from repro.errors import ValidationError

#: default port: one above serve-metrics' 9464, so both fit side by side
DEFAULT_PORT = 9465

#: header naming the tenant a query belongs to
TENANT_HEADER = "X-Repro-Tenant"
DEFAULT_TENANT = "default"

#: span names that only a cold (enumerating) run produces
_ENUMERATION_SPANS = ("optimize.application", "optimize.enumerate",
                      "optimize.cut_atoms", "candidate")

_INDEX = (
    "<html><head><title>repro serve</title></head><body>"
    "<h1>repro serve</h1>"
    "<p>POST /submit &mdash; run a workload spec "
    "(tenant via X-Repro-Tenant header)</p>"
    '<p>GET /status/&lt;id&gt; &mdash; query summary</p>'
    '<p>GET /result/&lt;id&gt; &mdash; full result payload</p>'
    '<p><a href="/metrics">/metrics</a> &mdash; per-tenant Prometheus '
    "exposition</p>"
    '<p><a href="/healthz">/healthz</a> &mdash; liveness</p>'
    "</body></html>\n"
)


@dataclass
class QueryRecord:
    """Everything the daemon remembers about one submitted query."""

    id: str
    tenant: str
    spec: dict
    status: str = "running"
    error: str | None = None
    plan_cache: str | None = None
    rows: list = field(default_factory=list)
    virtual_ms: float = 0.0
    wall_ms: float = 0.0
    ledger: list = field(default_factory=list)
    span_names: list = field(default_factory=list)
    enumeration_spans: int = 0

    def summary(self) -> dict:
        """The ``/status`` (and ``/submit`` response) payload."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "workload": self.spec.get("workload"),
            "status": self.status,
            "error": self.error,
            "plan_cache": self.plan_cache,
            "virtual_ms": self.virtual_ms,
            "wall_ms": self.wall_ms,
        }

    def full(self) -> dict:
        """The ``/result`` payload."""
        payload = self.summary()
        payload.update(
            rows=self.rows,
            ledger=self.ledger,
            spans=self.span_names,
            enumeration_spans=self.enumeration_spans,
        )
        return payload


class _Handler(BaseHTTPRequestHandler):
    """Routes requests against the daemon; logs nowhere."""

    server: "ServingDaemon._Server"  # set by http.server machinery

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        daemon = self.server.daemon
        path = self.path.rstrip("/")
        if path == "/healthz":
            self._reply(200, b"ok\n", "text/plain; charset=utf-8")
        elif path == "/metrics":
            body = prometheus_text(daemon.registry, "repro_").encode("utf-8")
            self._reply(200, body,
                        "text/plain; version=0.0.4; charset=utf-8")
        elif path.startswith("/status/"):
            self._json_record(path[len("/status/"):], full=False)
        elif path.startswith("/result/"):
            self._json_record(path[len("/result/"):], full=True)
        elif path == "":
            self._reply(200, _INDEX.encode("utf-8"),
                        "text/html; charset=utf-8")
        else:
            self._reply(404, b"not found\n", "text/plain; charset=utf-8")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        daemon = self.server.daemon
        if self.path.rstrip("/") != "/submit":
            self._reply(404, b"not found\n", "text/plain; charset=utf-8")
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            spec = json.loads(raw.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._json(400, {"error": "body must be JSON"})
            return
        if not isinstance(spec, dict):
            self._json(400, {"error": "body must be a JSON object"})
            return
        tenant = self.headers.get(TENANT_HEADER) or DEFAULT_TENANT
        try:
            record = daemon.submit(spec, tenant=tenant)
        except ValidationError as exc:
            self._json(400, {"error": str(exc)})
            return
        self._json(500 if record.status == "error" else 200,
                   record.summary())

    # ------------------------------------------------------------------
    def _json_record(self, query_id: str, full: bool) -> None:
        record = self.server.daemon.query(query_id)
        if record is None:
            self._json(404, {"error": f"unknown query {query_id!r}"})
            return
        self._json(200, record.full() if full else record.summary())

    def _json(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._reply(status, body, "application/json; charset=utf-8")

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default stderr access log."""


class ServingDaemon:
    """Long-lived multi-tenant serving process (usable in-process too).

    The HTTP layer is a thin wrapper over :meth:`submit` /
    :meth:`query`, so tests and benchmarks can drive the same machinery
    without sockets.
    """

    class _Server(ThreadingHTTPServer):
        daemon_threads = True
        daemon: "ServingDaemon"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache_size: int = 64,
        parallelism: int | None = None,
        execution_mode: str | None = None,
        context_factory: "Callable[[], RheemContext] | None" = None,
    ):
        self.host = host
        self._requested_port = port
        #: serving-wide registry: every merged series is tenant-labelled
        self.registry = MetricsRegistry()
        self.plan_cache = PlanCache(cache_size)
        self.slot_pool = PlatformSlotPool()
        if context_factory is None:
            def context_factory() -> RheemContext:
                return RheemContext(
                    parallelism=parallelism, execution_mode=execution_mode
                )
        self.sessions = SessionManager(context_factory)
        self.sessions.on_create = self._wire_session
        self._queries: dict[str, QueryRecord] = {}
        self._queries_lock = threading.Lock()
        self._next_query = 0
        self._server: ServingDaemon._Server | None = None
        self._thread: threading.Thread | None = None
        self._stamp_build_info()

    def _stamp_build_info(self) -> None:
        from repro.core.executor import Executor
        from repro.core.observability.report import repo_git_sha

        probe = Executor()
        set_build_info(
            self.registry,
            git_sha=repo_git_sha() or "unknown",
            config_epoch=probe._config_epoch(),
        )

    def _wire_session(self, session: TenantSession) -> None:
        """Install the shared cache + admission pool on a new session."""
        ctx = session.context
        ctx.plan_cache = self.plan_cache
        self.slot_pool.register_platforms(ctx.platforms)
        ctx.executor.slot_pool = self.slot_pool

    # ------------------------------------------------------------------
    # query lifecycle (in-process API; HTTP wraps this)
    # ------------------------------------------------------------------
    def submit(self, spec: dict, tenant: str = DEFAULT_TENANT) -> QueryRecord:
        """Run one workload spec for ``tenant``; returns its record.

        Execution is synchronous: one query per tenant at a time (the
        session lock), concurrent across tenants (throttled by the
        shared slot pool).  :class:`ValidationError` propagates (HTTP
        400); execution failures land in the record as ``error``.
        """
        session = self.sessions.session(tenant)
        with self._queries_lock:
            self._next_query += 1
            record = QueryRecord(
                id=f"q{self._next_query}", tenant=tenant, spec=dict(spec)
            )
            self._queries[record.id] = record
        with session.lock:
            ctx = session.context
            tracer = Tracer()
            ctx.attach_tracer(tracer)
            started = time.perf_counter()
            try:
                handle = build_workload(ctx, spec)
                rows, metrics = handle.collect_with_metrics()
            except ValidationError:
                with self._queries_lock:
                    del self._queries[record.id]
                raise
            except Exception as exc:  # noqa: BLE001 - reported per query
                record.wall_ms = (time.perf_counter() - started) * 1000.0
                record.status = "error"
                record.error = f"{type(exc).__name__}: {exc}"
                return record
            finally:
                ctx.attach_tracer(None)
            record.wall_ms = (time.perf_counter() - started) * 1000.0
            session.queries += 1
            self._finish(record, tenant, tracer, rows, metrics)
            return record

    def _finish(self, record, tenant, tracer, rows, metrics) -> None:
        """Tenant-tag the run's accounting and fold it into the daemon."""
        entries = metrics.ledger.entries
        entries[:] = [replace(e, tenant=tenant) for e in entries]
        for span in tracer.spans:
            span.attributes.setdefault("tenant", tenant)
        requests = metrics.registry.counter("plan_cache_requests")
        outcome = "hit" if requests.value(result="hit") else "miss"
        self.registry.merge_from(tracer.registry,
                                 extra_labels={"tenant": tenant})
        self.registry.counter(
            "serve_queries", "queries served by outcome"
        ).inc(
            tenant=tenant,
            workload=str(record.spec.get("workload")),
            plan_cache=outcome,
        )
        record.status = "done"
        record.plan_cache = outcome
        record.rows = rows
        record.virtual_ms = metrics.virtual_ms
        record.ledger = [
            [e.label, e.ms, e.platform, e.atom_id, e.tenant]
            for e in entries
        ]
        record.span_names = [span.name for span in tracer.spans]
        record.enumeration_spans = sum(
            1 for name in record.span_names if name in _ENUMERATION_SPANS
        )

    def query(self, query_id: str) -> QueryRecord | None:
        with self._queries_lock:
            return self._queries.get(query_id)

    # ------------------------------------------------------------------
    # HTTP lifecycle (MetricsHTTPServer shape)
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServingDaemon":
        """Bind and serve from a daemon thread; returns self."""
        if self._server is not None:
            return self
        server = self._Server((self.host, self._requested_port), _Handler)
        server.daemon = self
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down and join the serving thread (idempotent)."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
        self._server = None
        self._thread = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServingDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
