"""Per-tenant session state for the serving daemon.

Each tenant gets its own long-lived
:class:`~repro.core.context.RheemContext` — its own optimizer wiring,
calibration and default-platform choices — while the shared pieces (the
plan cache, the admission slot pool) are installed onto every session by
the daemon.  The Executor keeps per-run state on itself (atom sequence,
profiler, journal marks), so a session executes one query at a time
under its lock; *cross*-tenant queries run concurrently, throttled only
by the shared admission pool.
"""

from __future__ import annotations

import threading
from typing import Callable


class TenantSession:
    """One tenant's context plus the lock serializing its queries."""

    def __init__(self, tenant: str, context):
        self.tenant = tenant
        self.context = context
        self.lock = threading.Lock()
        #: queries this session has finished (monotonic, under lock)
        self.queries = 0


class SessionManager:
    """Create-on-first-use map from tenant name to session."""

    def __init__(self, context_factory: Callable[[], object]):
        self._factory = context_factory
        self._sessions: dict[str, TenantSession] = {}
        self._lock = threading.Lock()
        #: hooks the daemon applies to each freshly created context
        #: (plan cache + slot pool installation)
        self.on_create: Callable[[TenantSession], None] | None = None

    def session(self, tenant: str) -> TenantSession:
        with self._lock:
            session = self._sessions.get(tenant)
            if session is None:
                session = TenantSession(tenant, self._factory())
                if self.on_create is not None:
                    self.on_create(session)
                self._sessions[tenant] = session
            return session

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
