"""Multi-tenant serving layer: daemon, sessions, plan cache, admission.

``repro serve`` keeps one long-lived process answering query traffic:
per-tenant :class:`~repro.core.context.RheemContext` sessions, an LRU
:class:`PlanCache` memoizing optimizer output by logical-plan
fingerprint × calibration epoch × config epoch, and a process-wide
:class:`PlatformSlotPool` so concurrent queries share — rather than
multiply — each platform's execution slots.
"""

from repro.core.serving.admission import PlatformSlotPool
from repro.core.serving.daemon import ServingDaemon
from repro.core.serving.plan_cache import PlanCache, plan_cache_key
from repro.core.serving.sessions import SessionManager, TenantSession
from repro.core.serving.workloads import WORKLOADS, build_workload

__all__ = [
    "PlanCache",
    "PlatformSlotPool",
    "ServingDaemon",
    "SessionManager",
    "TenantSession",
    "WORKLOADS",
    "build_workload",
    "plan_cache_key",
]
