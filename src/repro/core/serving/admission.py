"""Process-wide admission control over per-platform execution slots.

A single query's scheduler already respects
``platform.max_concurrent_atoms`` — but each query gets its *own*
scheduler, so N concurrent queries would run N × cap atoms against a
platform that advertises cap.  The :class:`PlatformSlotPool` is the
shared budget: the daemon installs one pool on every session's Executor
(``executor.slot_pool``), and both the sequential path and the
concurrent scheduler acquire a pool slot per top-level atom before
running it.

Slots are only ever held for the duration of one atom (acquire → run →
release, no hold-and-wait across platforms), so the pool can delay
dispatch but never deadlock it.  Because journaled replay already makes
ledgers independent of dispatch timing, admission delays are invisible
to the accounting — only wall-clock waits move.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable


class PlatformSlotPool:
    """Counting semaphores per platform name, shared across queries."""

    def __init__(self, capacities: "dict[str, int] | None" = None):
        self._capacity: dict[str, int] = {}
        self._used: dict[str, int] = {}
        self._cv = threading.Condition()
        #: total blocking acquires that had to wait
        self.waits = 0
        #: cumulative wall time spent blocked in :meth:`acquire`
        self.wait_ms = 0.0
        for name, cap in (capacities or {}).items():
            self.register(name, cap)

    def register(self, name: str, capacity: int) -> None:
        """Declare ``capacity`` slots for platform ``name`` (idempotent:
        re-registering keeps the larger capacity)."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        with self._cv:
            self._capacity[name] = max(self._capacity.get(name, 0), capacity)
            self._used.setdefault(name, 0)

    def register_platforms(self, platforms: Iterable) -> None:
        """Register every platform's ``max_concurrent_atoms`` budget."""
        for platform in platforms:
            self.register(
                platform.name, max(1, platform.max_concurrent_atoms)
            )

    def capacity(self, name: str) -> int | None:
        """Registered capacity for ``name`` (None: unlimited/untracked)."""
        with self._cv:
            return self._capacity.get(name)

    def in_use(self, name: str) -> int:
        with self._cv:
            return self._used.get(name, 0)

    def try_acquire(self, name: str) -> bool:
        """Take a slot if one is free; never blocks.

        Unregistered platforms are untracked: always granted (the
        per-query scheduler still enforces its own local cap).
        """
        with self._cv:
            cap = self._capacity.get(name)
            if cap is None:
                return True
            if self._used[name] >= cap:
                return False
            self._used[name] += 1
            return True

    def acquire(self, name: str) -> float:
        """Block until a slot frees up; return the wait in milliseconds."""
        with self._cv:
            cap = self._capacity.get(name)
            if cap is None:
                return 0.0
            if self._used[name] < cap:
                self._used[name] += 1
                return 0.0
            self.waits += 1
            started = time.perf_counter()
            while self._used[name] >= cap:
                self._cv.wait()
            self._used[name] += 1
            waited = (time.perf_counter() - started) * 1000.0
            self.wait_ms += waited
            return waited

    def release(self, name: str) -> None:
        with self._cv:
            if name not in self._capacity:
                return
            if self._used[name] <= 0:
                raise RuntimeError(
                    f"slot pool release without acquire for {name!r}"
                )
            self._used[name] -= 1
            self._cv.notify_all()

    def wait_for_slot(
        self, names: Iterable[str], timeout: float | None = None
    ) -> bool:
        """Block until any of ``names`` has a free slot (or timeout).

        Used by the concurrent scheduler when every dispatchable atom is
        pool-starved: instead of spinning (or wrongly declaring
        deadlock), it parks here until another query releases.
        """
        wanted = [n for n in names if n in self._capacity]
        if not wanted:
            return True
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while all(self._used[n] >= self._capacity[n] for n in wanted):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cv.wait(remaining)
            return True

    def snapshot(self) -> dict:
        with self._cv:
            return {
                name: {"capacity": cap, "in_use": self._used[name]}
                for name, cap in sorted(self._capacity.items())
            }
