"""Seeded, deterministic serving workloads: wordcount, join, kmeans.

One builder per workload kind, shared by the daemon (``POST /submit``
bodies name a workload + parameters) and the test harness (which replays
the same specs against direct :class:`RheemContext` runs to assert
byte-identical outputs, virtual time and ledgers).  Every builder is a
pure function of its spec: same seed ⇒ same data ⇒ same logical-plan
fingerprint, which is what makes repeat submissions cache hits.
"""

from __future__ import annotations

import random
from typing import Any

from repro.errors import ValidationError

_VOCAB = (
    "freedom", "road", "data", "analytics", "plan", "platform",
    "cost", "query", "cache", "tenant",
)


def _pair_count(word):
    return (word, 1)


def _pair_key(pair):
    return pair[0]


def _pair_sum(a, b):
    return (a[0], a[1] + b[1])


def _count_order(pair):
    return (-pair[1], pair[0])


def _touch(pair):
    return (pair[0], pair[1] + 0)


def wordcount(ctx, seed: int = 0, lines: int = 12, width: int = 6,
              chain: int = 0):
    """Classic wordcount over seeded synthetic lines.

    ``chain`` appends extra no-op map stages — used by ABL14 to grow the
    enumeration space (more operators ⇒ more candidate work) without
    growing the data.
    """
    rng = random.Random(seed)
    data = [
        " ".join(rng.choice(_VOCAB) for _ in range(width))
        for _ in range(lines)
    ]
    quanta = ctx.collection(data).flat_map(str.split).map(_pair_count)
    for _ in range(chain):
        quanta = quanta.map(_touch)
    return quanta.reduce_by(key=_pair_key, reducer=_pair_sum).sort(
        key=_count_order
    )


def _left_key(row):
    return row[0]


def _join_order(pair):
    return (pair[0][0], pair[0][1], pair[1][1])


def join(ctx, seed: int = 0, rows: int = 16):
    """Seeded equi-join of two integer tables, totally ordered."""
    rng = random.Random(seed)
    keys = max(1, rows // 2)
    left = [(i % keys, rng.randrange(100)) for i in range(rows)]
    right = [(i % keys, rng.randrange(100)) for i in range(rows // 2)]
    return (
        ctx.collection(left)
        .join(ctx.collection(right), _left_key, _left_key)
        .sort(key=_join_order)
    )


def _dist2(a, b):
    return (a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2


def _tag_nearest(pc):
    point, centroid = pc
    return (point, centroid, _dist2(point, centroid))


def _point_of(tagged):
    return tagged[0]


def _closer(a, b):
    return a if (a[2], a[1]) <= (b[2], b[1]) else b


def _contribution(tagged):
    point, centroid, _ = tagged
    return (centroid, (point[0], point[1], 1))


def _centroid_of(kv):
    return kv[0]


def _sum_contribs(a, b):
    return (a[0], (a[1][0] + b[1][0], a[1][1] + b[1][1], a[1][2] + b[1][2]))


def _mean_centroid(kv):
    _, (sx, sy, n) = kv
    return (round(sx / n, 6), round(sy / n, 6))


def _centroid_order(centroid):
    return centroid


def kmeans(ctx, seed: int = 0, points: int = 24, k: int = 3,
           iters: int = 3):
    """Lloyd's k-means as a ``repeat`` loop over the centroid state.

    Each iteration crosses points with the current centroids, keeps the
    nearest assignment per point, and averages per cluster; centroids
    are sorted each round so the loop state has a canonical order.
    """
    rng = random.Random(seed)
    data = [
        (round(rng.uniform(0.0, 10.0), 3), round(rng.uniform(0.0, 10.0), 3))
        for _ in range(points)
    ]
    initial = data[:k]

    def body(state):
        pts = state.source(data)
        nearest = (
            pts.cross(state)
            .map(_tag_nearest)
            .reduce_by(key=_point_of, reducer=_closer)
        )
        return (
            nearest.map(_contribution)
            .reduce_by(key=_centroid_of, reducer=_sum_contribs)
            .map(_mean_centroid)
            .sort(key=_centroid_order)
        )

    return ctx.collection(initial).repeat(iters, body)


WORKLOADS = {
    "wordcount": wordcount,
    "join": join,
    "kmeans": kmeans,
}


def build_workload(ctx, spec: "dict[str, Any]"):
    """Build the DataQuanta handle for one ``/submit`` spec.

    A spec is ``{"workload": <kind>, **params}``; unknown kinds or
    parameters raise :class:`ValidationError` (the daemon answers 400).
    """
    params = dict(spec)
    kind = params.pop("workload", None)
    builder = WORKLOADS.get(kind)
    if builder is None:
        raise ValidationError(
            f"unknown workload {kind!r}; available: {sorted(WORKLOADS)}"
        )
    try:
        return builder(ctx, **params)
    except TypeError as exc:
        raise ValidationError(f"bad {kind} parameters: {exc}") from exc
