"""The end-user entry point: :class:`RheemContext` and the fluent
:class:`DataQuanta` plan builder.

A context wires together the whole stack — operator mappings, rewrite
rules, cardinality estimation, cost models, platforms, storage catalog and
executor — and exposes a small, chainable API::

    ctx = RheemContext()
    words = (
        ctx.collection(lines)
        .flat_map(str.split)
        .map(lambda word: (word, 1))
        .reduce_by(key=lambda pair: pair[0],
                   reducer=lambda a, b: (a[0], a[1] + b[1]))
        .collect()
    )

``collect`` runs the three-layer pipeline: application optimizer (logical
rewrites + translation), multi-platform task optimizer (variant/platform
choice, atom cutting) and the Executor.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.executor import ExecutionResult, Executor
from repro.core.logical.operators import (
    CollectionSource,
    CollectSink,
    CostHints,
    Count,
    CrossProduct,
    Distinct,
    Filter,
    FlatMap,
    GlobalReduce,
    GroupBy,
    Join,
    Limit,
    LogicalOperator,
    LoopInput,
    Map,
    ReduceBy,
    Repeat,
    Sample,
    Sort,
    TableSource,
    TextFileSource,
    Union,
    ZipWithId,
)
from repro.core.logical.plan import LogicalPlan
from repro.core.mappings import OperatorMappings, default_mappings
from repro.core.metrics import CostEntry, ExecutionMetrics
from repro.core.optimizer.application import ApplicationOptimizer
from repro.core.optimizer.cardinality import CardinalityEstimator
from repro.core.optimizer.cost import MovementCostModel
from repro.core.optimizer.enumerator import MultiPlatformOptimizer
from repro.core.optimizer.rules import RuleRegistry, default_rules
from repro.core.runtime import FailureInjector, RuntimeContext
from repro.errors import ValidationError


class _PlanBuilder:
    """Shared holder so chained DataQuanta see one evolving logical plan."""

    __slots__ = ("plan",)

    def __init__(self, plan: LogicalPlan):
        self.plan = plan


class RheemContext:
    """Configuration root and execution facade."""

    def __init__(
        self,
        platforms: "list | None" = None,
        mappings: OperatorMappings | None = None,
        rules: RuleRegistry | None = None,
        estimator: CardinalityEstimator | None = None,
        movement: MovementCostModel | None = None,
        catalog: "Any | None" = None,
        failure_injector: FailureInjector | None = None,
        max_retries: int = 2,
        failover: bool = False,
        backoff: "Any | None" = None,
        tracer: "Any | None" = None,
        parallelism: int | None = None,
        execution_mode: str | None = None,
        columnar: bool | None = None,
        columnar_native: bool | None = None,
        calibrate: "Any | None" = None,
        resume: bool | None = None,
        deadline_ms: float | None = None,
        profile: bool | None = None,
    ):
        """``failover=True`` lets the Executor re-plan the remaining plan
        suffix on surviving platforms when an atom exhausts its retries
        (the platform is quarantined first); ``backoff`` overrides the
        default :class:`~repro.core.resilience.BackoffPolicy`;
        ``tracer`` (a :class:`~repro.core.observability.Tracer`) enables
        end-to-end span tracing — optimizer, executor, platform operators
        and data movement — for every plan this context executes;
        ``parallelism`` > 1 runs independent task atoms concurrently
        (default 1, or the ``REPRO_PARALLELISM`` environment variable);
        ``execution_mode`` picks the concurrent scheduler's backend:
        ``"thread"`` (default, or ``REPRO_EXECUTION_MODE``) or
        ``"process"`` — forked worker processes with zero-copy
        shared-memory transport for columnar channels; outputs and
        accounting are byte-identical either way;
        ``columnar=True`` packs numeric channel hand-offs into
        struct-of-arrays buffers, with conversion charged to the ledger
        (default off, or the ``REPRO_COLUMNAR`` environment variable);
        ``columnar_native=True`` (the default when columnar is on, or
        the ``REPRO_COLUMNAR_NATIVE`` environment variable) lets
        eligible consumers read the column buffers in place, eliding the
        row materialisation (``columnar.elide`` ledger entries; wall
        time only);
        ``calibrate`` turns on cross-run cardinality calibration:
        ``True`` attaches a fresh
        :class:`~repro.core.optimizer.calibration.CalibrationStore`, or
        pass an existing store to share priors across contexts /
        processes.  The estimator is wrapped in a
        :class:`~repro.core.optimizer.cardinality.CalibratedCardinalityEstimator`
        and every execution's boundary observations are folded back into
        the store (``REPRO_NO_CALIBRATION=1`` disables all of it);
        ``resume=True`` makes the Executor resume a crashed run from an
        attached :class:`~repro.core.recovery.RunJournal` instead of
        starting over (default off, or ``REPRO_RESUME``);
        ``deadline_ms`` bounds each atom attempt's wall-clock time —
        overruns are charged, counted and escalated through the
        failover ladder (default off, or ``REPRO_DEADLINE_MS``);
        ``profile=True`` attaches real-resource attribution (CPU,
        peak allocation, GC pauses, queue wait, channel bytes) to every
        atom span and the metrics registry (default off, or
        ``REPRO_PROFILE``)."""
        if platforms is None:
            from repro.platforms import default_platforms

            platforms = default_platforms()
        self.platforms = platforms
        self.mappings = mappings or default_mappings()
        self.rules = rules or default_rules()
        if estimator is None and catalog is not None:
            from repro.storage.catalog import CatalogAwareEstimator

            estimator = CatalogAwareEstimator(catalog)
        self.estimator = estimator or CardinalityEstimator()
        #: optional cross-run CalibrationStore (None: calibration off)
        self.calibration = None
        if calibrate:
            from repro.core.optimizer.calibration import CalibrationStore
            from repro.core.optimizer.cardinality import (
                CalibratedCardinalityEstimator,
            )

            self.calibration = (
                calibrate
                if isinstance(calibrate, CalibrationStore)
                else CalibrationStore()
            )
            self.estimator = CalibratedCardinalityEstimator(
                self.calibration, base=self.estimator
            )
        self.movement = movement or MovementCostModel()
        self.catalog = catalog
        self.failure_injector = failure_injector
        self.app_optimizer = ApplicationOptimizer(self.mappings, self.rules)
        self.task_optimizer = MultiPlatformOptimizer(
            self.platforms, self.estimator, self.movement
        )
        self.executor = Executor(
            self.movement,
            max_retries=max_retries,
            backoff=backoff,
            task_optimizer=self.task_optimizer,
            failover=failover,
            parallelism=parallelism,
            execution_mode=execution_mode,
            columnar=columnar,
            columnar_native=columnar_native,
            calibration=self.calibration,
            resume=resume,
            deadline_ms=deadline_ms,
            profile=profile,
        )
        #: optional Tracer; when set every execute() is traced end-to-end
        self.tracer = tracer
        #: optional :class:`~repro.core.serving.plan_cache.PlanCache`;
        #: when set, execute() memoizes optimizer output by logical-plan
        #: fingerprint × calibration epoch × config epoch and skips
        #: enumeration entirely on a hit (installed by the serving daemon)
        self.plan_cache = None
        self._default_platform: str | None = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer: "Any | None") -> None:
        """Attach (or detach, with None) an end-to-end tracer."""
        self.tracer = tracer
    def set_default_platform(self, name: str | None) -> None:
        """Pin all execution to one platform (None restores cost-based
        multi-platform optimization)."""
        if name is not None and name not in {p.name for p in self.platforms}:
            raise ValidationError(
                f"unknown platform {name!r}; "
                f"registered: {[p.name for p in self.platforms]}"
            )
        self._default_platform = name

    def platform(self, name: str):
        """Return the registered platform called ``name``."""
        for platform in self.platforms:
            if platform.name == name:
                return platform
        raise ValidationError(f"unknown platform {name!r}")

    # ------------------------------------------------------------------
    # plan building
    # ------------------------------------------------------------------
    def collection(self, data: Sequence[Any], name: str | None = None) -> "DataQuanta":
        """Start a plan from an in-memory collection."""
        builder = _PlanBuilder(LogicalPlan())
        op = builder.plan.add(CollectionSource(data, name))
        return DataQuanta(self, builder, op)

    def textfile(self, path: str) -> "DataQuanta":
        """Start a plan from the lines of a text file."""
        builder = _PlanBuilder(LogicalPlan())
        op = builder.plan.add(TextFileSource(path))
        return DataQuanta(self, builder, op)

    def table(self, dataset: str) -> "DataQuanta":
        """Start a plan from a dataset registered in the storage catalog
        (or stored natively in the relational platform)."""
        builder = _PlanBuilder(LogicalPlan())
        op = builder.plan.add(TableSource(dataset))
        return DataQuanta(self, builder, op)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: LogicalPlan,
        platform: str | None = None,
        runtime: RuntimeContext | None = None,
    ) -> ExecutionResult:
        """Run a logical plan through all three layers and return results.

        With a :attr:`plan_cache` attached, the optimizer layers are
        consulted only on a cache miss: a repeat fingerprint (same
        structure, UDF code, data, platform, calibration epoch and
        config epoch) replays the memoized execution plan with zero
        enumeration — no optimizer spans, a zero-ms ``plan_cache.hit``
        ledger entry, outputs and virtual time byte-identical to the
        cold run.
        """
        from repro.core.observability.spans import KIND_TASK, maybe_span

        tracer = self.tracer
        if runtime is not None and getattr(runtime, "tracer", None) is not None:
            tracer = runtime.tracer
        cache = self.plan_cache
        with maybe_span(tracer, "task", KIND_TASK) as task_span:
            execution = None
            cache_key = None
            if cache is not None:
                from repro.core.optimizer.fingerprint import (
                    logical_plan_fingerprint,
                )
                from repro.core.serving.plan_cache import plan_cache_key

                cache_key = plan_cache_key(
                    logical_plan_fingerprint(plan),
                    platform or self._default_platform,
                    self.calibration.epoch
                    if self.calibration is not None
                    else 0,
                    self.executor._config_epoch(),
                )
                execution = cache.get(cache_key)
            cached = execution is not None
            if not cached:
                physical = self.app_optimizer.optimize(plan, tracer=tracer)
                execution = self.task_optimizer.optimize(
                    physical,
                    forced_platform=platform or self._default_platform,
                    tracer=tracer,
                )
                if cache is not None:
                    cache.put(cache_key, execution)
            if runtime is None:
                runtime = RuntimeContext(
                    catalog=self.catalog,
                    failure_injector=self.failure_injector,
                    tracer=tracer,
                )
            elif getattr(runtime, "tracer", None) is None:
                runtime.tracer = tracer
            result = self.executor.execute(execution, runtime)
            if cache is not None:
                result.plan_cache = "hit" if cached else "miss"
                if cached:
                    # Zero-ms marker where the enumerator spans would
                    # have been: 0.0 + x == x for every float, so the
                    # virtual total stays bit-identical to a cold run.
                    result.metrics.ledger.entries.insert(
                        0, CostEntry("plan_cache.hit", 0.0, "serving")
                    )
                result.metrics.registry.counter(
                    "plan_cache_requests",
                    "plan-cache lookups by outcome",
                ).inc(result=result.plan_cache)
                if tracer is not None:
                    task_span.set(plan_cache=result.plan_cache)
            return result

    def execute_adaptive(
        self,
        plan: LogicalPlan,
        platform: str | None = None,
        runtime: RuntimeContext | None = None,
    ) -> tuple[ExecutionResult, int]:
        """Run a logical plan with progressive re-optimization.

        Like :meth:`execute`, but the executor replans the remaining plan
        whenever observed cardinalities contradict the optimizer's
        estimates (see :mod:`repro.core.progressive`).  Returns the result
        plus the number of replans performed.
        """
        from repro.core.progressive import ProgressiveExecutor

        physical = self.app_optimizer.optimize(plan, tracer=self.tracer)
        if runtime is None:
            runtime = RuntimeContext(
                catalog=self.catalog,
                failure_injector=self.failure_injector,
                tracer=self.tracer,
            )
        progressive = ProgressiveExecutor(
            self.task_optimizer,
            movement=self.movement,
            max_retries=self.executor.max_retries,
            calibration=self.calibration,
        )
        progressive.listeners = self.executor.listeners
        return progressive.execute_progressively(
            physical,
            runtime,
            forced_platform=platform or self._default_platform,
        )


class DataQuanta:
    """A fluent handle on the output of one logical operator.

    Each transformation appends an operator to the underlying logical
    plan and returns a new handle; nothing executes until a terminal
    action (:meth:`collect`, :meth:`collect_with_metrics`).
    """

    def __init__(self, ctx: RheemContext, builder: _PlanBuilder, op: LogicalOperator):
        self._ctx = ctx
        self._builder = builder
        self._op = op

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def plan(self) -> LogicalPlan:
        """The logical plan under construction."""
        return self._builder.plan

    @property
    def operator(self) -> LogicalOperator:
        """The logical operator this handle points at."""
        return self._op

    def _append(self, op: LogicalOperator) -> "DataQuanta":
        self._builder.plan.add(op, [self._op])
        return DataQuanta(self._ctx, self._builder, op)

    def _append_binary(self, op: LogicalOperator, other: "DataQuanta") -> "DataQuanta":
        if other._builder is not self._builder:
            self._builder.plan.graph.absorb(other._builder.plan.graph)
            other._builder.plan = self._builder.plan
        self._builder.plan.add(op, [self._op, other._op])
        return DataQuanta(self._ctx, self._builder, op)

    def apply_operator(self, op: LogicalOperator) -> "DataQuanta":
        """Append an application-defined unary logical operator.

        The extension point for applications bringing their own operators
        (e.g. the cleaning application's ``InequalityJoin``): any operator
        with a registered logical→physical mapping can join the plan.
        """
        return self._append(op)

    def apply_binary_operator(
        self, op: LogicalOperator, other: "DataQuanta"
    ) -> "DataQuanta":
        """Append an application-defined binary logical operator."""
        return self._append_binary(op, other)

    def source(self, data: Sequence[Any], name: str | None = None) -> "DataQuanta":
        """Add another collection source to this same plan.

        Mainly useful inside :meth:`repeat` bodies, where side inputs must
        live in the loop's body plan.
        """
        op = self._builder.plan.add(CollectionSource(data, name))
        return DataQuanta(self._ctx, self._builder, op)

    # ------------------------------------------------------------------
    # unary transformations
    # ------------------------------------------------------------------
    def map(self, udf: Callable[[Any], Any], *, name: str | None = None,
            hints: CostHints | None = None) -> "DataQuanta":
        """Apply ``udf`` to every quantum."""
        return self._append(Map(udf, name, hints))

    def flat_map(self, udf: Callable[[Any], Any], *, name: str | None = None,
                 hints: CostHints | None = None) -> "DataQuanta":
        """Apply ``udf`` yielding zero or more quanta per input."""
        return self._append(FlatMap(udf, name, hints))

    def filter(self, predicate: Callable[[Any], bool], *, name: str | None = None,
               hints: CostHints | None = None) -> "DataQuanta":
        """Keep quanta satisfying ``predicate``."""
        return self._append(Filter(predicate, name, hints))

    def zip_with_id(self) -> "DataQuanta":
        """Pair every quantum with a dense unique id: ``(id, quantum)``."""
        return self._append(ZipWithId())

    def group_by(self, key: Callable[[Any], Any], *, name: str | None = None,
                 hints: CostHints | None = None) -> "DataQuanta":
        """Group into ``(key, [quanta])`` pairs."""
        return self._append(GroupBy(key, name=name, hints=hints))

    def reduce_by(self, key: Callable[[Any], Any],
                  reducer: Callable[[Any, Any], Any], *,
                  name: str | None = None,
                  hints: CostHints | None = None) -> "DataQuanta":
        """Combine quanta sharing a key (one combined quantum per key).

        The reducer must preserve the key of its operands.
        """
        return self._append(ReduceBy(key, reducer, name=name, hints=hints))

    def reduce(self, reducer: Callable[[Any, Any], Any], *,
               name: str | None = None,
               hints: CostHints | None = None) -> "DataQuanta":
        """Fold the whole dataset into a single quantum."""
        return self._append(GlobalReduce(reducer, name=name, hints=hints))

    def sort(self, key: Callable[[Any], Any], *, reverse: bool = False) -> "DataQuanta":
        """Totally order the dataset."""
        return self._append(Sort(key, reverse))

    def distinct(self) -> "DataQuanta":
        """Drop duplicate quanta."""
        return self._append(Distinct())

    def sample(self, size: int, seed: int = 0) -> "DataQuanta":
        """Keep a uniform random sample of ``size`` quanta."""
        return self._append(Sample(size, seed))

    def count(self) -> "DataQuanta":
        """Reduce to a single integer count."""
        return self._append(Count())

    def limit(self, n: int) -> "DataQuanta":
        """Keep only the first ``n`` quanta (in upstream order)."""
        return self._append(Limit(n))

    # ------------------------------------------------------------------
    # binary transformations
    # ------------------------------------------------------------------
    def join(self, other: "DataQuanta", left_key: Callable[[Any], Any],
             right_key: Callable[[Any], Any], *,
             hints: CostHints | None = None) -> "DataQuanta":
        """Equi-join with ``other``; yields ``(left, right)`` pairs."""
        return self._append_binary(Join(left_key, right_key, hints=hints), other)

    def cross(self, other: "DataQuanta", *,
              hints: CostHints | None = None) -> "DataQuanta":
        """Cartesian product with ``other``."""
        return self._append_binary(CrossProduct(hints=hints), other)

    def union(self, other: "DataQuanta") -> "DataQuanta":
        """Bag union with ``other``."""
        return self._append_binary(Union(), other)

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------
    def repeat(
        self,
        times: int | None,
        body: Callable[["DataQuanta"], "DataQuanta"],
        *,
        condition: Callable[[list[Any]], bool] | None = None,
        max_iterations: int = 1000,
    ) -> "DataQuanta":
        """Iterate ``body`` over this dataset as evolving loop state.

        ``body`` receives a handle on the loop state and returns the
        handle holding the next state; it may add side inputs with
        :meth:`source`.  Stops after ``times`` iterations and/or when
        ``condition(state)`` is true.
        """
        body_builder = _PlanBuilder(LogicalPlan())
        loop_input = LoopInput()
        body_builder.plan.add(loop_input)
        state_handle = DataQuanta(self._ctx, body_builder, loop_input)
        result_handle = body(state_handle)
        if result_handle._builder is not body_builder:
            raise ValidationError(
                "repeat body must build on the provided state handle"
            )
        repeat = Repeat(
            body=body_builder.plan,
            body_input=loop_input,
            body_output=result_handle._op,
            times=times,
            condition=condition,
            max_iterations=max_iterations,
        )
        return self._append(repeat)

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def collect(self, platform: str | None = None) -> list[Any]:
        """Execute the plan and return this handle's quanta."""
        return self.collect_with_metrics(platform)[0]

    def collect_with_metrics(
        self, platform: str | None = None
    ) -> tuple[list[Any], ExecutionMetrics]:
        """Execute the plan; return (results, execution metrics)."""
        sink = CollectSink()
        self._builder.plan.add(sink, [self._op])
        try:
            result = self._ctx.execute(self._builder.plan, platform=platform)
        finally:
            # Keep the handle reusable: drop the sink we appended.
            self._builder.plan.graph.remove_unary(sink)
        # Outputs are keyed by physical sink id; we added exactly one sink.
        return result.single, result.metrics

    def explain(self) -> str:
        """Render the logical plan under construction."""
        return self._builder.plan.explain()
