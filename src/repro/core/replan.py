"""Mid-run re-planning helpers: rebuild the unexecuted plan suffix.

Both adaptive re-optimization (:mod:`repro.core.progressive`, triggered
by cardinality misestimates) and failover (:mod:`repro.core.executor`,
triggered by platform death) pause execution, rebuild the **remaining**
physical plan with every already-materialised channel injected as an
exact-cardinality in-memory source, and hand the suffix back to the
multi-platform optimizer.  These helpers implement the shared surgery.

Operator objects are reused, so operator ids — and therefore channels
and collect sinks — stay stable across re-plans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.logical.operators import CollectionSource
from repro.core.physical.fusion import PFusedPipeline
from repro.core.physical.operators import PCollectionSource, PhysicalOperator
from repro.core.physical.plan import PhysicalPlan
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.channels import CollectionChannel
    from repro.core.execution.plan import LoopAtom, TaskAtom


def plan_operator_ids(atom: "TaskAtom | LoopAtom") -> set[int]:
    """The original physical-plan operator ids an atom covers.

    Platform-layer fusion replaces operator chains inside atom fragments
    with :class:`PFusedPipeline` wrappers whose ids do not exist in the
    physical plan; map them back to their stage ids.
    """
    from repro.core.execution.plan import LoopAtom

    if isinstance(atom, LoopAtom):
        return {atom.repeat.id}
    ids: set[int] = set()
    for op in atom.fragment:
        if isinstance(op, PFusedPipeline):
            ids.update(stage.id for stage in op.stages)
        else:
            ids.add(op.id)
    return ids


def remainder_plan(
    plan: PhysicalPlan,
    executed_ids: set[int],
    channels: "dict[int, CollectionChannel]",
) -> PhysicalPlan:
    """The unexecuted suffix of ``plan``, fed by materialised sources.

    Operator objects are reused (ids stay stable); every executed producer
    of a surviving operator becomes a :class:`PCollectionSource` holding
    the channel's actual data, so the re-optimizer sees exact input
    cardinalities.
    """
    remainder = PhysicalPlan()
    injected: dict[int, PhysicalOperator] = {}
    surviving: dict[int, PhysicalOperator] = {}
    for operator in plan.graph.topological_order():
        if operator.id in executed_ids:
            continue
        inputs: list[PhysicalOperator] = []
        for producer in plan.graph.inputs_of(operator):
            if producer.id in executed_ids:
                source = injected.get(producer.id)
                if source is None:
                    channel = channels.get(producer.id)
                    if channel is None:
                        raise ExecutionError(
                            f"replan: no channel for executed producer "
                            f"{producer!r}"
                        )
                    source = PCollectionSource(
                        CollectionSource(
                            channel.require_data(), name="replan-input"
                        )
                    )
                    remainder.add(source)
                    injected[producer.id] = source
                inputs.append(source)
            else:
                inputs.append(surviving[producer.id])
        remainder.add(operator, inputs)
        surviving[operator.id] = operator
    return remainder
