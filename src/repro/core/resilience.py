"""Fault-tolerance primitives for the Executor (paper §4.2).

The paper's Executor must cope "with failures"; this module provides the
building blocks the retry → quarantine → failover ladder is made of:

* :class:`BackoffPolicy` — exponential backoff with deterministic jitter,
  charged to the virtual-time ledger as ``retry.backoff`` (no wall-clock
  sleeping: time is virtual, results are real — DESIGN.md §2);
* :class:`PlatformHealth` / :class:`HealthTracker` — per-platform failure
  accounting with a circuit breaker (closed → open → half-open) and
  virtual-time quarantine cool-downs, attached to
  :class:`~repro.core.runtime.RuntimeContext`;
* :class:`FailureInjector` — deterministic *and* probabilistic fault
  injection (per-ordinal budgets, platform-targeted permanent outages,
  custom exception classes, straggler slowdowns) with a seeded RNG, so
  resilience tests are exactly reproducible.

The Executor consumes these in :meth:`Executor._attempt_with_retries`
(retry + backoff + breaker bookkeeping) and :meth:`Executor._failover`
(quarantine + suffix re-planning).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import ExecutionError, PlatformDownError, TransientError
from repro.util.rng import make_rng

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BackoffPolicy",
    "FailureInjector",
    "HealthTracker",
    "PlatformHealth",
]


# ----------------------------------------------------------------------
# retry backoff
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic jitter, in virtual ms.

    The delay before retry ``attempt`` (0-based) is::

        base_ms * factor**attempt, capped at max_ms

    of which a ``jitter`` fraction is replaced by a uniform draw from a
    seeded RNG keyed on ``(seed, token, attempt)`` — so two runs with the
    same seed charge *identical* backoff, while distinct atoms (distinct
    tokens) still decorrelate (no retry convoys).
    """

    base_ms: float = 10.0
    factor: float = 2.0
    max_ms: float = 10_000.0
    jitter: float = 0.5
    seed: int = 0

    def delay_ms(self, attempt: int, token: object = None) -> float:
        """Virtual milliseconds to wait before retry ``attempt``."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        raw = min(self.max_ms, self.base_ms * (self.factor ** attempt))
        if self.jitter <= 0.0:
            return raw
        u = make_rng(self.seed, "backoff", token, attempt).random()
        return raw * (1.0 - self.jitter) + raw * self.jitter * u


# ----------------------------------------------------------------------
# platform health / circuit breaker
# ----------------------------------------------------------------------
#: circuit-breaker states
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass
class PlatformHealth:
    """Failure accounting and breaker state for one platform."""

    name: str
    failures: int = 0
    successes: int = 0
    consecutive_failures: int = 0
    state: str = BREAKER_CLOSED
    #: virtual-time instant (tracker clock) when the quarantine lifts
    quarantined_until_ms: float = 0.0
    #: how many times this platform has been quarantined
    quarantines: int = 0
    #: cool-down the *next* quarantine will use (escalates on repeats)
    next_cooldown_ms: float = field(default=0.0, repr=False)


class HealthTracker:
    """Per-platform circuit breakers over a virtual clock.

    States follow the classic breaker ladder:

    * **closed** — healthy; failures are counted, and
      ``failure_threshold`` *consecutive* failures (or one permanent
      failure) trip the breaker;
    * **open** — quarantined; :meth:`is_available` is False until the
      virtual clock passes the cool-down;
    * **half-open** — cool-down expired; one probe is admitted.  Success
      closes the breaker (and resets the cool-down), failure re-opens it
      with an escalated cool-down (``escalation``× per repeat, capped at
      ``max_cooldown_ms``).

    The clock is *virtual*: the Executor advances it with the backoff it
    charges to the ledger, keeping resilience behaviour deterministic and
    wall-clock-free.

    The tracker is **thread-safe**: every read-modify-write is guarded by
    an internal re-entrant lock.  Under the concurrent DAG scheduler the
    authoritative health mutations are *replayed* by the coordinator in
    atom-ordinal order (so breaker evolution stays byte-identical to a
    sequential run), but the lock makes direct concurrent use — custom
    executors, shared RuntimeContexts — safe as well.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_ms: float = 1_000.0,
        escalation: float = 2.0,
        max_cooldown_ms: float = 60_000.0,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.escalation = escalation
        self.max_cooldown_ms = max_cooldown_ms
        self.clock_ms = 0.0
        self._platforms: dict[str, PlatformHealth] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def health(self, name: str) -> PlatformHealth:
        """The (auto-created) health record for platform ``name``."""
        with self._lock:
            record = self._platforms.get(name)
            if record is None:
                record = PlatformHealth(name, next_cooldown_ms=self.cooldown_ms)
                self._platforms[name] = record
            return record

    def snapshot(self) -> dict[str, PlatformHealth]:
        """Current records keyed by platform name (shared objects)."""
        with self._lock:
            return dict(self._platforms)

    def advance(self, ms: float) -> None:
        """Advance the virtual clock by ``ms`` (backoff, atom time...)."""
        with self._lock:
            if ms > 0:
                self.clock_ms += ms

    # ------------------------------------------------------------------
    def record_success(self, name: str) -> None:
        """Note a successful atom; closes a half-open breaker."""
        with self._lock:
            record = self.health(name)
            record.successes += 1
            record.consecutive_failures = 0
            if record.state == BREAKER_HALF_OPEN:
                record.state = BREAKER_CLOSED
                record.next_cooldown_ms = self.cooldown_ms

    def record_failure(self, name: str, permanent: bool = False) -> bool:
        """Note a failed attempt; returns True when the breaker tripped.

        ``permanent`` (a :class:`~repro.errors.PlatformDownError`) trips
        immediately; otherwise ``failure_threshold`` consecutive failures
        are required.  A failed half-open probe re-opens with an
        escalated cool-down.
        """
        with self._lock:
            record = self.health(name)
            record.failures += 1
            record.consecutive_failures += 1
            if record.state == BREAKER_HALF_OPEN:
                self.quarantine(name)
                return True
            if record.state == BREAKER_CLOSED and (
                permanent
                or record.consecutive_failures >= self.failure_threshold
            ):
                self.quarantine(name)
                return True
            return False

    def quarantine(self, name: str, cooldown_ms: float | None = None) -> float:
        """Open the breaker for ``name``; returns the cool-down applied."""
        with self._lock:
            record = self.health(name)
            cooldown = (
                cooldown_ms if cooldown_ms is not None
                else record.next_cooldown_ms
            )
            record.state = BREAKER_OPEN
            record.quarantined_until_ms = self.clock_ms + cooldown
            record.quarantines += 1
            record.next_cooldown_ms = min(
                self.max_cooldown_ms, record.next_cooldown_ms * self.escalation
            )
            return cooldown

    # ------------------------------------------------------------------
    def state(self, name: str) -> str:
        """Breaker state for ``name`` (advancing open → half-open lazily)."""
        with self._lock:
            record = self.health(name)
            if (
                record.state == BREAKER_OPEN
                and self.clock_ms >= record.quarantined_until_ms
            ):
                record.state = BREAKER_HALF_OPEN
            return record.state

    def is_available(self, name: str) -> bool:
        """Whether atoms may be scheduled on ``name`` right now."""
        return self.state(name) != BREAKER_OPEN

    def available(self, names: "list[str]") -> "list[str]":
        """Filter ``names`` down to currently available platforms."""
        return [name for name in names if self.is_available(name)]

    # ------------------------------------------------------------------
    # durable-journal state (crash recovery)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """JSON-serialisable snapshot of clock and per-platform records.

        Written into every run-journal record so a resumed run restores
        breaker states and *remaining* quarantine cool-downs exactly —
        a platform quarantined before the crash stays quarantined until
        the same virtual instant after resume.
        """
        with self._lock:
            return {
                "clock_ms": self.clock_ms,
                "platforms": {
                    name: {
                        "failures": r.failures,
                        "successes": r.successes,
                        "consecutive_failures": r.consecutive_failures,
                        "state": r.state,
                        "quarantined_until_ms": r.quarantined_until_ms,
                        "quarantines": r.quarantines,
                        "next_cooldown_ms": r.next_cooldown_ms,
                    }
                    for name, r in self._platforms.items()
                },
            }

    def restore_state(self, state: dict) -> None:
        """Replace clock and records with a journaled snapshot."""
        with self._lock:
            self.clock_ms = float(state.get("clock_ms", 0.0))
            self._platforms = {
                name: PlatformHealth(name=name, **fields)
                for name, fields in state.get("platforms", {}).items()
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}={record.state}" for name, record in self._platforms.items()
        )
        return f"<HealthTracker clock={self.clock_ms:.1f}ms [{parts}]>"


# ----------------------------------------------------------------------
# failure injection
# ----------------------------------------------------------------------
class FailureInjector:
    """Injects failures into atom execution to exercise the resilience
    machinery.  Everything is deterministic for a fixed seed + config.

    Four independent fault sources compose:

    * ``failures`` — the original per-ordinal budgets: atom ordinal (the
      i-th atom execution, 0-based) → number of times it fails before
      succeeding.  Raises ``error_class`` (default
      :class:`~repro.errors.TransientError`).
    * ``down_platforms`` — platform name → ordinal threshold.  Once the
      execution reaches that ordinal, *every* attempt on that platform
      raises :class:`~repro.errors.PlatformDownError` (a permanent
      outage; only failover can save the run).
    * ``rate`` — probabilistic per-attempt failures drawn from a seeded
      RNG, optionally restricted to ``target_platforms``.
    * ``slowdown_rate`` / ``slowdown_ms`` — straggler injection: with
      probability ``slowdown_rate`` an attempt is charged an extra
      ``slowdown_ms`` of virtual time (``inject.slowdown`` in the
      ledger) without failing.

    Every injected event is appended to :attr:`log` as
    ``(ordinal, platform, kind)`` so tests can assert exact sequences.

    Probabilistic draws are *keyed* on ``(seed, ordinal, attempt)`` —
    each attempt's fate is a pure function of its identity, not of how
    many draws happened before it.  That makes injection schedule-free:
    the concurrent DAG scheduler can execute atoms in any interleaving
    (or speculatively, discarding work after a failover) and every atom
    ordinal still sees exactly the faults a sequential run would inject.

    The scheduler drives ordinal assignment through the predict/commit
    surface: :attr:`position` peeks at the counter, the coordinator
    predicts ordinals for dispatched atoms without advancing it, then
    :meth:`skip` commits the consumed range at replay time and
    :meth:`reset_attempts` rolls back per-ordinal attempt counts for
    executions discarded by a failover.
    """

    def __init__(
        self,
        failures: dict[int, int] | None = None,
        *,
        seed: int = 0,
        error_class: type[Exception] = TransientError,
        down_platforms: dict[str, int] | None = None,
        rate: float = 0.0,
        target_platforms: "set[str] | None" = None,
        slowdown_rate: float = 0.0,
        slowdown_ms: float = 0.0,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if not 0.0 <= slowdown_rate <= 1.0:
            raise ValueError(
                f"slowdown_rate must be in [0, 1], got {slowdown_rate}"
            )
        if not issubclass(error_class, ExecutionError):
            raise TypeError(
                "error_class must subclass ExecutionError so the Executor's "
                f"retry machinery sees it; got {error_class!r}"
            )
        self.failures = dict(failures or {})
        self.seed = seed
        self.error_class = error_class
        self.down_platforms = dict(down_platforms or {})
        self.rate = rate
        self.target_platforms = (
            set(target_platforms) if target_platforms is not None else None
        )
        self.slowdown_rate = slowdown_rate
        self.slowdown_ms = slowdown_ms
        #: injected events: (atom ordinal, platform or None, kind)
        self.log: list[tuple[int, str | None, str]] = []
        self._execution_counter = -1
        self._attempts: dict[int, int] = {}

    # ------------------------------------------------------------------
    def next_atom(self) -> int:
        """Advance to the next atom execution; returns its ordinal."""
        self._execution_counter += 1
        return self._execution_counter

    @property
    def position(self) -> int:
        """The last ordinal handed out (-1 before the first atom).

        The concurrent scheduler uses this to *predict* the ordinals a
        batch of dispatched atoms will consume without advancing the
        counter; :meth:`skip` commits the consumption at replay time.
        """
        return self._execution_counter

    def skip(self, count: int) -> None:
        """Commit ``count`` predicted ordinals (advance the counter)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._execution_counter += count

    def reset_attempts(self, ordinals: "list[int] | set[int]") -> None:
        """Forget attempt counts for ``ordinals``.

        Called by the concurrent scheduler when a failover discards
        speculative executions: the per-ordinal budgets must replay from
        attempt 0 when those ordinals are re-predicted, exactly as if
        the discarded attempts had never run.
        """
        for ordinal in ordinals:
            self._attempts.pop(ordinal, None)

    # ------------------------------------------------------------------
    # process-mode worker deltas
    # ------------------------------------------------------------------
    def snapshot_attempts(self) -> dict[int, int]:
        """Copy of the per-ordinal attempt counts.

        A process-mode worker snapshots before running its atom and
        ships back only the entries that changed (its own ordinal):
        the coordinator applies them at completion, landing the exact
        state the thread-mode shared injector would hold.
        """
        return dict(self._attempts)

    def apply_attempts(self, attempts: dict[int, int]) -> None:
        """Apply a worker's attempt-count delta (see
        :meth:`snapshot_attempts`)."""
        self._attempts.update(attempts)

    # ------------------------------------------------------------------
    # durable-journal state (crash recovery)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """JSON-serialisable snapshot of the *committed* injection state.

        Per-ordinal attempt counts are filtered to ordinals at or below
        :attr:`position`: under the concurrent scheduler, speculative
        executions of later atoms pre-populate ``_attempts`` for
        ordinals that were never committed — a resumed run must replay
        those from attempt 0, or it would skip the faults the crashed
        run never actually absorbed.  (:attr:`log` is diagnostic and is
        not journaled; a resumed run's log covers only its own suffix.)
        """
        return {
            "position": self._execution_counter,
            "attempts": {
                str(ordinal): count
                for ordinal, count in sorted(self._attempts.items())
                if ordinal <= self._execution_counter
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore counter and attempt counts from a journaled snapshot.

        The injector's *configuration* (budgets, seed, rates) is not
        journaled — the resuming caller supplies the same config, and
        this restores its position within the fault schedule so the
        resumed suffix injects exactly the remaining faults.
        """
        self._execution_counter = int(state.get("position", -1))
        self._attempts = {
            int(ordinal): int(count)
            for ordinal, count in state.get("attempts", {}).items()
        }

    def _targets(self, platform: str | None) -> bool:
        return (
            self.target_platforms is None
            or platform is None
            or platform in self.target_platforms
        )

    def check(self, ordinal: int, platform: str | None = None) -> None:
        """Raise if this attempt should fail (called once per attempt)."""
        # Permanent platform outage: fails every attempt, forever.
        if platform is not None:
            threshold = self.down_platforms.get(platform)
            if threshold is not None and ordinal >= threshold:
                self.log.append((ordinal, platform, "down"))
                raise PlatformDownError(
                    f"injected outage: platform {platform!r} is down "
                    f"(atom ordinal {ordinal})"
                )
        # Deterministic per-ordinal budgets (transient).
        budget = self.failures.get(ordinal, 0)
        attempt = self._attempts.get(ordinal, 0)
        self._attempts[ordinal] = attempt + 1
        if attempt < budget:
            self.log.append((ordinal, platform, "budget"))
            raise self.error_class(
                f"injected failure (atom ordinal {ordinal}, attempt {attempt})"
            )
        # Probabilistic failures (transient unless error_class says else).
        if self.rate > 0.0 and self._targets(platform):
            u = make_rng(self.seed, "inject.fail", ordinal, attempt).random()
            if u < self.rate:
                self.log.append((ordinal, platform, "random"))
                raise self.error_class(
                    f"injected probabilistic failure (atom ordinal {ordinal}"
                    f", platform {platform})"
                )

    def slowdown_for(
        self,
        ordinal: int,
        platform: str | None = None,
        attempt: int | None = None,
    ) -> float:
        """Extra virtual ms a straggling attempt should be charged.

        ``attempt`` defaults to the attempt :meth:`check` is about to
        register for this ordinal (the Executor calls ``slowdown_for``
        immediately before ``check`` on every attempt).
        """
        if self.slowdown_rate <= 0.0 or not self._targets(platform):
            return 0.0
        if attempt is None:
            attempt = self._attempts.get(ordinal, 0)
        u = make_rng(self.seed, "inject.slow", ordinal, attempt).random()
        if u < self.slowdown_rate:
            self.log.append((ordinal, platform, "slowdown"))
            return self.slowdown_ms
        return 0.0
