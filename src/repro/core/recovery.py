"""Durable crash recovery: the write-ahead run journal (paper §4.2).

The Executor's in-process fault tolerance (retry → quarantine →
failover, :mod:`repro.core.resilience`) cannot survive the process
itself dying — and the :class:`~repro.core.checkpoint.CheckpointManager`
docstring names whole-process crashes as the reason checkpoints exist.
This module supplies the missing durable half:

* :class:`RunJournal` — an append-only, fsync'd record of one run:
  a header (run id, plan fingerprint, execution-config epoch) followed
  by one record per completed top-level atom carrying the atom's ledger
  slice, serialized span subtree, output shapes, and snapshots of the
  failure-injector / health-tracker / metrics-registry state *after*
  that atom.  Every line is CRC32-guarded; a torn tail (a crash mid
  ``write``) is detected and truncated, never trusted.  File creation
  and prefix rewrites are crash-atomic (write-temp-then-rename);
  appends are flushed and fsync'd per record.

* :class:`CrashInjector` — the chaos harness companion of
  :class:`~repro.core.resilience.FailureInjector`: a seeded
  kill-at-atom-N simulation that hard-aborts the executor around the
  journal commit of the N-th atom (before the record, after it, or
  leaving a torn tail), raising :class:`SimulatedCrash` — a
  ``BaseException`` so it cannot be absorbed by the retry ladder.

* :func:`config_epoch` — a digest of the execution configuration that
  changes result bytes or checkpoint payloads (columnar hand-offs,
  kernel and calibration kill-switches, calibration store): journal
  headers and checkpoint fingerprints both embed it so state written
  under one configuration is never replayed into another.

Resume (``Executor(resume=True)`` / ``REPRO_RESUME=1`` /
``repro resume``) replays the journal's trusted prefix — restoring
channels from checkpoints and ledger/span/health/injector state from
the records — and executes only the missing suffix; the recovery
invariant (pinned by the crash/resume sweep tests) is that the final
outputs, ``virtual_ms``, full ledger entry sequence and span shape are
byte-identical to an uninterrupted run, at any parallelism.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from typing import TYPE_CHECKING, Any

from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.observability.registry import MetricsRegistry

__all__ = [
    "CrashInjector",
    "RunJournal",
    "SimulatedCrash",
    "config_epoch",
]

#: journal format version (bumped on incompatible record changes)
JOURNAL_VERSION = 1


class SimulatedCrash(BaseException):
    """A chaos-harness process kill.

    Deliberately a ``BaseException``: it must fly through the
    Executor's retry machinery (which catches ``Exception``) exactly
    like ``os._exit`` would — nothing between the injection point and
    the test harness may absorb it.
    """


# ----------------------------------------------------------------------
# config epoch
# ----------------------------------------------------------------------
def config_epoch(
    *,
    columnar: bool = False,
    columnar_native: bool = False,
    calibration: bool = False,
) -> str:
    """Digest of the execution config that affects persisted state.

    Two runs with different epochs must not share checkpoints or
    journals: a checkpoint written under ``columnar=1`` would replay
    wrong conversion charges into a row-mode run, and kernel /
    calibration kill-switches change the charge sequence.  The
    columnar-*native* flag is part of the epoch because elided
    boundaries add ``columnar.elide`` ledger entries the egest path
    lacks.  Parallelism is deliberately *excluded* — results and
    virtual time are identical at any setting (the concurrent
    scheduler's contract), so a run may be resumed at a different
    parallelism.  The execution mode (thread vs process workers) is
    excluded for the same reason: a journal written under threads
    resumes under processes and vice versa.
    """
    from repro.core.optimizer.calibration import calibration_enabled
    from repro.core.physical.compiled import kernels_enabled

    parts = (
        f"columnar={int(bool(columnar))}",
        f"columnar_native={int(bool(columnar) and bool(columnar_native))}",
        f"kernels={int(kernels_enabled())}",
        f"calibration={int(bool(calibration) and calibration_enabled())}",
        "store=" + os.environ.get("REPRO_CALIBRATION_STORE", "").strip(),
    )
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


# ----------------------------------------------------------------------
# record encoding: one CRC32-guarded JSON line per record
# ----------------------------------------------------------------------
def encode_line(obj: dict[str, Any]) -> str:
    """Serialize one record as ``<crc32-hex8> <compact-json>\\n``."""
    payload = json.dumps(obj, separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}\n"


def decode_line(line: str) -> dict[str, Any] | None:
    """Parse one journal line; ``None`` when torn or corrupted.

    A valid line is ``<8 hex digits> <json>`` whose CRC32 matches the
    JSON payload bytes.  Anything else — short line, bad hex, CRC
    mismatch, truncated JSON — is treated as damage, not data.
    """
    if len(line) < 10 or line[8] != " ":
        return None
    crc_hex, payload = line[:8], line[9:]
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        return None
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        obj = json.loads(payload)
    except ValueError:  # pragma: no cover - CRC passed but JSON broken
        return None
    return obj if isinstance(obj, dict) else None


# ----------------------------------------------------------------------
# the journal
# ----------------------------------------------------------------------
class RunJournal:
    """Durable write-ahead journal for one run id.

    Lifecycle: :meth:`begin` starts a fresh journal (atomic: the header
    is written to a temp file and renamed into place), :meth:`append`
    adds one fsync'd record per completed atom, :meth:`load` reads back
    the trusted prefix (CRC-validating every line, truncating at the
    first damaged one) and :meth:`reset_to` rewrites the file to a
    validated prefix — also via temp-then-rename — before a resumed run
    continues appending.
    """

    def __init__(
        self,
        path: str,
        run_id: str | None = None,
        workload: dict[str, Any] | None = None,
    ):
        self.path = str(path)
        base = os.path.splitext(os.path.basename(self.path))[0]
        self.run_id = run_id or base or "run"
        #: optional workload descriptor stored in the header so the CLI
        #: can rebuild the plan for ``repro resume`` (e.g. {"kind": "demo"})
        self.workload = dict(workload) if workload else None
        self._fh = None
        #: records appended (or kept by reset_to) since begin/reset
        self.records_written = 0
        #: damaged tail lines discarded by the last :meth:`load`
        self.torn_truncations = 0

    # ------------------------------------------------------------------
    def header(
        self,
        *,
        fingerprint: str,
        epoch: str,
        parallelism: int = 1,
        execution_mode: str = "thread",
    ) -> dict[str, Any]:
        """The header record for a fresh journal of this run.

        ``parallelism`` and ``execution_mode`` are informational — both
        are excluded from the epoch, so resume never compares them:
        a journal may be resumed at any parallelism and under either
        worker backend.
        """
        record: dict[str, Any] = {
            "t": "header",
            "version": JOURNAL_VERSION,
            "run_id": self.run_id,
            "fingerprint": fingerprint,
            "epoch": epoch,
            "parallelism": parallelism,
            "execution_mode": execution_mode,
        }
        if self.workload:
            record["workload"] = self.workload
        return record

    def begin(self, header: dict[str, Any]) -> None:
        """Start a fresh journal containing only ``header`` (atomic)."""
        if header.get("t") != "header":
            raise StorageError("journal must begin with a header record")
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(encode_line(header))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self.records_written = 0
        self._open_append()

    def _open_append(self) -> None:
        self.close()
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, record: dict[str, Any]) -> None:
        """Append one record durably (write + flush + fsync)."""
        if self._fh is None:
            raise StorageError(
                f"journal {self.path}: append before begin()/reset_to()"
            )
        self._fh.write(encode_line(record))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.records_written += 1

    def append_raw(self, text: str) -> None:
        """Append raw bytes *without* record framing (chaos: torn tail)."""
        if self._fh is None:
            raise StorageError(f"journal {self.path}: not open")
        self._fh.write(text)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------
    def load(self) -> tuple[dict[str, Any] | None, list[dict[str, Any]], int]:
        """Read the trusted prefix: ``(header, records, torn_lines)``.

        Validation stops at the first damaged line; everything after it
        is counted as torn and ignored (a crash mid-append tears at
        most the final line, but bit rot anywhere must not let later
        records be trusted either — records are a causal sequence).  A
        missing file or damaged header yields ``(None, [], torn)``:
        nothing is resumable.
        """
        self.torn_truncations = 0
        if not os.path.exists(self.path):
            return None, [], 0
        with open(self.path, "r", encoding="utf-8", errors="replace") as fh:
            lines = fh.read().split("\n")
        header: dict[str, Any] | None = None
        records: list[dict[str, Any]] = []
        torn = 0
        damaged = False
        for line in lines:
            if not line:
                continue
            obj = None if damaged else decode_line(line)
            if obj is None:
                damaged = True
                torn += 1
                continue
            if header is None:
                if obj.get("t") != "header":
                    return None, [], torn + 1
                header = obj
            else:
                records.append(obj)
        self.torn_truncations = torn
        if header is None:
            return None, [], torn
        return header, records, torn

    def reset_to(
        self, header: dict[str, Any], records: list[dict[str, Any]]
    ) -> None:
        """Rewrite the journal to a validated prefix, atomically.

        Used by resume after :meth:`load`: the trusted prefix (possibly
        shortened further by checkpoint validation) replaces the file
        via temp-then-rename, and the journal reopens for appending the
        resumed run's suffix records.
        """
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(encode_line(header))
            for record in records:
                fh.write(encode_line(record))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self.records_written = len(records)
        self._open_append()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RunJournal {self.run_id!r} path={self.path!r} "
            f"records={self.records_written}>"
        )


# ----------------------------------------------------------------------
# chaos harness
# ----------------------------------------------------------------------
class CrashInjector:
    """Kill the run at the N-th journal commit (0-based), like a crash.

    Three modes bracket the commit's durability window:

    * ``"before"`` — die before the record is written: the atom's work
      is lost; resume re-executes it;
    * ``"after"`` — die after the record is durable: resume replays it
      and continues with the next atom;
    * ``"torn"`` — write the record, then a garbage partial line (a
      crash mid-append), then die: resume must detect and truncate the
      torn tail.

    Attached as ``runtime.crash_injector``; consulted by the Executor's
    journal-commit step only, so an un-journaled run never crashes.
    """

    MODES = ("before", "after", "torn")

    def __init__(self, crash_at: int, mode: str = "after"):
        if crash_at < 0:
            raise ValueError(f"crash_at must be >= 0, got {crash_at}")
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.crash_at = crash_at
        self.mode = mode
        #: journal records committed so far
        self.commits = 0
        self.fired = False

    def before_commit(self) -> None:
        """Hook immediately before a journal record is written."""
        if (
            not self.fired
            and self.mode == "before"
            and self.commits == self.crash_at
        ):
            self.fired = True
            raise SimulatedCrash(
                f"injected crash before journal record {self.commits}"
            )

    def after_commit(self, journal: RunJournal | None) -> None:
        """Hook immediately after a journal record became durable."""
        index = self.commits
        self.commits += 1
        if self.fired or self.mode == "before" or index != self.crash_at:
            return
        self.fired = True
        if self.mode == "torn" and journal is not None:
            # A plausible-looking but unparseable partial line: valid
            # hex prefix, truncated JSON — the tail a real mid-write
            # crash leaves behind.
            journal.append_raw('00000000 {"t":"atom","torn":')
        raise SimulatedCrash(
            f"injected crash after journal record {index} ({self.mode})"
        )


# ----------------------------------------------------------------------
# metrics-registry state snapshots (journal records)
# ----------------------------------------------------------------------
def export_registry_state(registry: "MetricsRegistry") -> dict[str, Any]:
    """Full, JSON-serialisable state of every registry instrument.

    Unlike :meth:`MetricsRegistry.snapshot` (a human/Prometheus-facing
    summary), this is lossless: histogram bucket counts and exact
    min/max survive, so :func:`import_registry_state` reproduces the
    registry byte for byte.
    """
    from repro.core.observability.registry import Histogram

    out: dict[str, Any] = {}
    for instrument in registry.instruments():
        if isinstance(instrument, Histogram):
            series = [
                [
                    [list(pair) for pair in key],
                    {
                        "counts": list(s.counts),
                        "total": s.total,
                        "n": s.n,
                        "vmin": s.vmin,
                        "vmax": s.vmax,
                    },
                ]
                for key, s in sorted(instrument.series.items())
            ]
            out[instrument.name] = {
                "kind": "histogram",
                "help": instrument.help,
                "bounds": list(instrument.bounds),
                "series": series,
            }
        else:
            out[instrument.name] = {
                "kind": instrument.kind,
                "help": instrument.help,
                "series": [
                    [[list(pair) for pair in key], value]
                    for key, value in sorted(instrument.series.items())
                ],
            }
    return out


def import_registry_state(
    registry: "MetricsRegistry", state: dict[str, Any]
) -> None:
    """Replace instrument series with a journaled snapshot.

    Series of instruments named in ``state`` are overwritten (the
    snapshot *is* the prefix's truth — counters the resuming process
    bumped while rebuilding the plan are superseded); instruments not
    in the snapshot are left untouched.
    """
    from repro.core.observability.registry import HistogramSeries

    for name, payload in state.items():
        if payload["kind"] == "histogram":
            instrument = registry.histogram(
                name, payload.get("help", ""), buckets=payload["bounds"]
            )
            instrument.series = {}
            for key, s in payload["series"]:
                series = HistogramSeries(
                    bounds=instrument.bounds,
                    counts=list(s["counts"]),
                    total=s["total"],
                    n=s["n"],
                    vmin=s["vmin"],
                    vmax=s["vmax"],
                )
                instrument.series[
                    tuple(tuple(pair) for pair in key)
                ] = series
        else:
            instrument = (
                registry.gauge(name, payload.get("help", ""))
                if payload["kind"] == "gauge"
                else registry.counter(name, payload.get("help", ""))
            )
            instrument.series = {
                tuple(tuple(pair) for pair in key): value
                for key, value in payload["series"]
            }
