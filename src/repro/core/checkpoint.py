"""Checkpointed execution: resumable plans over the storage layer.

The Executor already retries failed atoms (paper §4.2, "coping with
failures"); for failures that survive retries — or whole-process crashes
— the :class:`CheckpointManager` persists every atom's boundary outputs
to a storage platform through the catalog.  A re-execution of an
equivalent plan restores finished atoms' channels from the checkpoint
store and only runs what is missing.

Checkpoint keys are *positional* (atom ordinal × output ordinal within
the plan), not operator-id based, so they remain valid across plan
rebuilds as long as the plan structure is unchanged.  ``plan_key``
namespaces checkpoints per application run; pass a fresh key (or call
:meth:`clear`) when the input data changes, since the manager cannot
detect that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import CatalogError, StorageError

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.catalog import Catalog


class CheckpointManager:
    """Saves and restores atom boundary outputs through the catalog."""

    def __init__(self, catalog: "Catalog", store_name: str, plan_key: str):
        if not plan_key:
            raise StorageError("plan_key must be non-empty")
        self.catalog = catalog
        self.store_name = store_name
        self.plan_key = plan_key
        #: counters updated by the executor (exposed for tests/monitoring)
        self.saves = 0
        self.restores = 0

    # ------------------------------------------------------------------
    def _dataset(self, atom_ordinal: int, output_ordinal: int) -> str:
        return (
            f"__ckpt__/{self.plan_key}/atom-{atom_ordinal:04d}/"
            f"out-{output_ordinal:02d}"
        )

    def save(
        self, atom_ordinal: int, output_ordinal: int, data: list[Any]
    ) -> float:
        """Persist one output channel; returns the virtual write cost."""
        cost = self.catalog.write_dataset(
            self._dataset(atom_ordinal, output_ordinal),
            data,
            self.store_name,
        )
        self.saves += 1
        return cost

    def load(
        self, atom_ordinal: int, output_ordinal: int
    ) -> tuple[list[Any], float] | None:
        """Restore one output channel, or None if not checkpointed."""
        name = self._dataset(atom_ordinal, output_ordinal)
        if name not in self.catalog:
            return None
        data, cost = self.catalog.read_dataset_with_cost(name)
        self.restores += 1
        return data, cost

    def has(self, atom_ordinal: int, output_ordinal: int) -> bool:
        return self._dataset(atom_ordinal, output_ordinal) in self.catalog

    def clear(self) -> int:
        """Drop every checkpoint of this plan key; returns the count."""
        prefix = f"__ckpt__/{self.plan_key}/"
        victims = [
            name for name in self.catalog.dataset_names
            if name.startswith(prefix)
        ]
        for name in victims:
            try:
                self.catalog.drop_dataset(name)
            except CatalogError:  # pragma: no cover - race with drops
                pass
        return len(victims)
