"""Checkpointed execution: resumable plans over the storage layer.

The Executor already retries failed atoms (paper §4.2, "coping with
failures"); for failures that survive retries — or whole-process crashes
— the :class:`CheckpointManager` persists every atom's boundary outputs
to a storage platform through the catalog.  A re-execution of an
equivalent plan restores finished atoms' channels from the checkpoint
store and only runs what is missing.

Checkpoint keys are *positional* (atom ordinal × output ordinal within
the plan), not operator-id based, so they remain valid across plan
rebuilds as long as the plan structure is unchanged.  ``plan_key``
namespaces checkpoints per application run; pass a fresh key (or call
:meth:`clear`) when the input data changes, since the manager cannot
detect that.

*Structural* staleness, however, **is** detected: the Executor computes a
plan-structure fingerprint (:func:`plan_fingerprint` — platform names,
operator kinds, atom shapes; deliberately *not* operator ids, which are
process-local) and hands it to :meth:`CheckpointManager.ensure_fingerprint`
before the first atom runs.  A mismatch under the same ``plan_key`` means
the positional keys no longer line up with the plan, so the stale
checkpoints are cleared automatically instead of being restored into the
wrong atoms.
"""

from __future__ import annotations

import hashlib
import warnings
import zlib
from typing import TYPE_CHECKING, Any

from repro.errors import CatalogError, StorageError

#: tag of the CRC guard element prepended to every checkpoint payload
_CRC_TAG = "__ckpt_crc__"

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.execution.plan import ExecutionPlan
    from repro.storage.catalog import Catalog


def plan_fingerprint(plan: "ExecutionPlan") -> str:
    """Stable hash of an execution plan's *structure*.

    Covers, per atom in schedule order: atom type, platform name,
    operator kinds (topological) with their UDFs' compiled code, output
    arity and external-input slots; loop atoms recurse into their body
    plans.  Operator ids are excluded on purpose — they come from a
    process-global counter, and the fingerprint must survive rebuilding
    the same plan in a new process (the crash-recovery case checkpoints
    exist for).  UDF *code* is hashed, but values captured by closures
    are not — like changed input data, those fall under the caller's
    ``plan_key`` responsibility.
    """
    from repro.core.execution.plan import LoopAtom

    def code_token(func) -> Any:
        code = getattr(func, "__code__", None)
        if code is None:  # builtins, partials, callables: best effort
            return getattr(func, "__qualname__", None) or repr(type(func))
        consts = tuple(
            c.co_code.hex() if hasattr(c, "co_code") else repr(c)
            for c in code.co_consts
        )
        return (code.co_code.hex(), consts, code.co_names)

    def op_token(op) -> tuple:
        stages = getattr(op, "stages", None)  # fused pipelines
        if stages:
            return (op.kind, tuple(op_token(stage) for stage in stages))
        udfs = tuple(
            (attr, code_token(value))
            for attr in ("udf", "predicate", "key", "condition")
            if callable(value := getattr(op, attr, None))
        )
        return (op.kind, udfs)

    def atom_token(atom) -> tuple:
        if isinstance(atom, LoopAtom):
            return (
                "loop",
                atom.platform.name,
                atom.repeat.iteration_bound,
                tuple(atom_token(inner) for inner in atom.body_plan.atoms),
            )
        return (
            "task",
            atom.platform.name,
            tuple(
                op_token(op) for op in atom.fragment.topological_order()
            ),
            len(atom.output_ids),
            tuple(sorted(slot for (_op, slot) in atom.external_inputs)),
        )

    payload = repr(tuple(atom_token(atom) for atom in plan.atoms))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CheckpointManager:
    """Saves and restores atom boundary outputs through the catalog."""

    def __init__(self, catalog: "Catalog", store_name: str, plan_key: str):
        if not plan_key:
            raise StorageError("plan_key must be non-empty")
        self.catalog = catalog
        self.store_name = store_name
        self.plan_key = plan_key
        # Catalog metadata is process-local: after a crash, checkpoint
        # blobs surviving on a durable store must be re-adopted before
        # ``has``/``load`` (and crash resume) can see them.
        rediscover = getattr(catalog, "rediscover", None)
        if rediscover is not None:
            rediscover(store_name, prefix=f"__ckpt__/{plan_key}/")
        #: counters updated by the executor (exposed for tests/monitoring)
        self.saves = 0
        self.restores = 0
        #: how many times a fingerprint mismatch auto-cleared stale data
        self.stale_clears = 0
        #: corrupted checkpoint payloads detected (and recomputed) on load
        self.corrupt_detected = 0

    # ------------------------------------------------------------------
    def _fingerprint_dataset(self) -> str:
        return f"__ckpt__/{self.plan_key}/meta/fingerprint"

    def ensure_fingerprint(self, fingerprint: str, epoch: str | None = None) -> bool:
        """Guard the store against structurally stale checkpoints.

        Called by the Executor with :func:`plan_fingerprint` of the plan
        about to run and (optionally) the execution *config epoch*
        (:func:`repro.core.recovery.config_epoch`).  If the recorded
        ``(fingerprint, epoch)`` pair differs, every checkpoint of the
        key is cleared — positionally mismatched plans would restore
        wrong data, and a checkpoint written under e.g. ``columnar=1``
        must not be replayed into a row-mode run (its conversion charges
        would be wrong).  Returns False when stale data was cleared,
        True when the store was empty or already matching.
        """
        expected = [fingerprint] if epoch is None else [fingerprint, epoch]
        name = self._fingerprint_dataset()
        if name in self.catalog:
            stored, _cost = self.catalog.read_dataset_with_cost(name)
            if list(stored) == expected:
                return True
            self.clear()
            self.stale_clears += 1
            self.catalog.write_dataset(name, expected, self.store_name)
            return False
        self.catalog.write_dataset(name, expected, self.store_name)
        return True

    # ------------------------------------------------------------------
    def _dataset(self, atom_ordinal: int, output_ordinal: int) -> str:
        return (
            f"__ckpt__/{self.plan_key}/atom-{atom_ordinal:04d}/"
            f"out-{output_ordinal:02d}"
        )

    @staticmethod
    def _payload_crc(data: list[Any]) -> int:
        return zlib.crc32(repr(data).encode("utf-8")) & 0xFFFFFFFF

    def save(
        self, atom_ordinal: int, output_ordinal: int, data: list[Any]
    ) -> float:
        """Persist one output channel; returns the virtual write cost.

        The payload is prefixed with a CRC32 guard element so
        :meth:`load` can detect truncation or bit rot instead of
        restoring a silently wrong channel.
        """
        guarded = [(_CRC_TAG, self._payload_crc(data))] + list(data)
        cost = self.catalog.write_dataset(
            self._dataset(atom_ordinal, output_ordinal),
            guarded,
            self.store_name,
        )
        self.saves += 1
        return cost

    def load(
        self, atom_ordinal: int, output_ordinal: int
    ) -> tuple[list[Any], float] | None:
        """Restore one output channel, or None if not checkpointed.

        A corrupted payload (CRC mismatch, or a guard element that is
        missing/mangled) also yields None — with a warning and a bump of
        :attr:`corrupt_detected` — so the Executor falls back to
        recomputing the atom rather than crashing the run or, worse,
        trusting damaged data.  Guard-less payloads written by older
        versions are rejected the same way: unverifiable is untrusted.
        """
        name = self._dataset(atom_ordinal, output_ordinal)
        if name not in self.catalog:
            return None
        try:
            stored, cost = self.catalog.read_dataset_with_cost(name)
        except Exception:  # unreadable/undecodable blob: same as corrupt
            stored, cost = None, 0.0
        data = self._unwrap(name, stored)
        if data is None:
            return None
        self.restores += 1
        return data, cost

    def _unwrap(self, name: str, stored: "list[Any] | None") -> list[Any] | None:
        guard = stored[0] if stored else None
        if (
            isinstance(guard, (tuple, list))
            and len(guard) == 2
            and guard[0] == _CRC_TAG
        ):
            data = list(stored[1:])
            if self._payload_crc(data) == guard[1]:
                return data
        self.corrupt_detected += 1
        warnings.warn(
            f"checkpoint {name!r} failed CRC validation; "
            "recomputing the atom instead of restoring it",
            RuntimeWarning,
            stacklevel=3,
        )
        return None

    def has(self, atom_ordinal: int, output_ordinal: int) -> bool:
        return self._dataset(atom_ordinal, output_ordinal) in self.catalog

    def clear(self) -> int:
        """Drop every checkpoint of this plan key; returns the count."""
        prefix = f"__ckpt__/{self.plan_key}/"
        victims = [
            name for name in self.catalog.dataset_names
            if name.startswith(prefix)
        ]
        for name in victims:
            try:
                self.catalog.drop_dataset(name)
            except CatalogError:  # pragma: no cover - race with drops
                pass
        return len(victims)
