"""Channels: the data hand-off points between task atoms.

When two adjacent task atoms run on different platforms, the producer's
output is *egested* into a platform-neutral :class:`CollectionChannel` and
*ingested* by the consumer's platform; the movement cost model prices the
hop.  Within an atom, data stays in the platform's native representation
and never passes through a channel.
"""

from __future__ import annotations

from typing import Any, Sequence


class CollectionChannel:
    """A materialised, platform-neutral dataset (a Python list).

    ``producer_platform`` records where the data was produced so the
    executor can charge the correct movement cost when a different
    platform consumes it.
    """

    __slots__ = ("data", "producer_platform")

    def __init__(self, data: Sequence[Any], producer_platform: str):
        self.data = list(data)
        self.producer_platform = producer_platform

    @property
    def cardinality(self) -> int:
        """Number of quanta in the channel."""
        return len(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self):
        return iter(self.data)

    def __repr__(self) -> str:
        return (
            f"CollectionChannel(n={len(self.data)}, "
            f"from={self.producer_platform!r})"
        )
