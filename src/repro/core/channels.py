"""Channels: the data hand-off points between task atoms.

When two adjacent task atoms run on different platforms, the producer's
output is *egested* into a platform-neutral :class:`CollectionChannel` and
*ingested* by the consumer's platform; the movement cost model prices the
hop.  Within an atom, data stays in the platform's native representation
and never passes through a channel.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ExecutionError


class CollectionChannel:
    """A materialised, platform-neutral dataset (a Python list).

    ``producer_platform`` records where the data was produced so the
    executor can charge the correct movement cost when a different
    platform consumes it.

    ``owned=True`` is the zero-copy fast path: when the producer hands
    over a list it already owns (``Platform.egest`` builds a fresh list
    per atom output), the channel adopts it without the defensive
    ``list(...)`` copy — measurable on large egest/ingest hops.  The
    default (``owned=False``) keeps copy semantics for arbitrary
    sequences and for callers that go on mutating their data.

    :meth:`release` drops the payload while remembering the cardinality,
    so the concurrent scheduler's channel refcounting can bound peak
    memory once the last consumer of a hand-off has finished (movement
    pricing and failover bookkeeping only need ``len``).
    """

    __slots__ = ("data", "producer_platform", "_released_card")

    def __init__(
        self,
        data: Sequence[Any],
        producer_platform: str,
        *,
        owned: bool = False,
    ):
        if owned and type(data) is list:
            self.data = data
        else:
            self.data = list(data)
        self.producer_platform = producer_platform
        self._released_card: int | None = None

    @property
    def cardinality(self) -> int:
        """Number of quanta in the channel."""
        return len(self)

    @property
    def released(self) -> bool:
        """Whether the payload has been dropped by refcounting."""
        return self._released_card is not None

    def release(self) -> None:
        """Drop the payload, keeping only the cardinality.

        Idempotent.  Called by the scheduler's channel refcounter when
        the last consumer of this hand-off has finished.
        """
        if self._released_card is None:
            self._released_card = len(self.data)
            self.data = None  # type: ignore[assignment]

    def require_data(self) -> list[Any]:
        """The payload, or a loud error if it was already released."""
        if self._released_card is not None:
            raise ExecutionError(
                "channel payload was released by refcounting but is still "
                f"being consumed (producer={self.producer_platform!r}); "
                "this is a consumer-count bug"
            )
        return self.data

    def __len__(self) -> int:
        if self._released_card is not None:
            return self._released_card
        return len(self.data)

    def __iter__(self):
        return iter(self.require_data())

    def __repr__(self) -> str:
        state = " (released)" if self.released else ""
        return (
            f"CollectionChannel(n={len(self)}, "
            f"from={self.producer_platform!r}{state})"
        )
