"""Channels: the data hand-off points between task atoms.

When two adjacent task atoms run on different platforms, the producer's
output is *egested* into a platform-neutral :class:`CollectionChannel` and
*ingested* by the consumer's platform; the movement cost model prices the
hop.  Within an atom, data stays in the platform's native representation
and never passes through a channel.

Numeric quanta may additionally travel in a :class:`ColumnarChannel` — a
struct-of-arrays layout over stdlib ``array`` buffers.  Conversion in
and out is explicit work, charged to the cost ledger like any movement
(``columnar.ingest`` / ``columnar.egest``).

Process-mode transport
----------------------

Under ``Executor(execution_mode="process")`` the concurrent scheduler's
workers are separate processes, and a columnar channel's buffers cross
the boundary through a ``multiprocessing.shared_memory`` segment instead
of a pickle stream: the producing worker copies each ``'q'``/``'d'``
buffer into one segment (:func:`export_columnar`) and ships only a tiny
:class:`ShmSegmentDescriptor`; the coordinator publishes a
:class:`ShmColumnarChannel` that answers ``len``/``width``/
``payload_bytes`` from descriptor metadata alone and attaches the
segment lazily on first real consumption.  Row/collection channels fall
back to ordinary pickling.  Segment lifetime is managed manually — a
module-level registry tracks every live segment this process must
unlink, with an ``atexit`` backstop for abnormal interpreter teardown —
because the stdlib ``resource_tracker`` double-counts attachments on
the supported interpreters (bpo-39959).
"""

from __future__ import annotations

import array
import atexit
import os
import sys
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.physical.columnar import ColumnarBatch
from repro.errors import ExecutionError


class CollectionChannel:
    """A materialised, platform-neutral dataset (a Python list).

    ``producer_platform`` records where the data was produced so the
    executor can charge the correct movement cost when a different
    platform consumes it.

    ``owned=True`` is the zero-copy fast path: when the producer hands
    over a list it already owns (``Platform.egest`` builds a fresh list
    per atom output), the channel adopts it without the defensive
    ``list(...)`` copy — measurable on large egest/ingest hops.  The
    default (``owned=False``) keeps copy semantics for arbitrary
    sequences and for callers that go on mutating their data.

    :meth:`release` drops the payload while remembering the cardinality,
    so the concurrent scheduler's channel refcounting can bound peak
    memory once the last consumer of a hand-off has finished (movement
    pricing and failover bookkeeping only need ``len``).
    """

    __slots__ = ("data", "producer_platform", "_released_card")

    def __init__(
        self,
        data: Sequence[Any],
        producer_platform: str,
        *,
        owned: bool = False,
    ):
        if owned and type(data) is list:
            self.data = data
        else:
            self.data = list(data)
        self.producer_platform = producer_platform
        self._released_card: int | None = None

    @property
    def cardinality(self) -> int:
        """Number of quanta in the channel."""
        return len(self)

    @property
    def released(self) -> bool:
        """Whether the payload has been dropped by refcounting."""
        return self._released_card is not None

    def release(self) -> None:
        """Drop the payload, keeping only the cardinality.

        Idempotent.  Called by the scheduler's channel refcounter when
        the last consumer of this hand-off has finished.
        """
        if self._released_card is None:
            card = len(self)
            self._drop_payload()
            self._released_card = card

    def _drop_payload(self) -> None:
        """Subclass hook: forget the payload (cardinality is kept by
        :meth:`release`, which is the single entry point for dropping)."""
        self.data = None  # type: ignore[assignment]

    def require_data(self) -> list[Any]:
        """The payload, or a loud error if it was already released."""
        if self._released_card is not None:
            raise ExecutionError(
                "channel payload was released by refcounting but is still "
                f"being consumed (producer={self.producer_platform!r}); "
                "this is a consumer-count bug"
            )
        return self.data

    #: rows sampled when estimating payload bytes (profiling only)
    _SIZE_SAMPLE = 64

    def payload_bytes(self) -> int:
        """Approximate in-memory payload size in bytes.

        Row channels are heterogeneous, so the estimate samples a prefix
        of rows (``sys.getsizeof`` of the row plus, for tuples, its
        elements) and scales by the cardinality, adding the list's own
        overhead.  Released channels report 0.  Only the resource
        profiler calls this — never the execution hot path.
        """
        if self._released_card is not None:
            return 0
        data = self.data
        n = len(data)
        if n == 0:
            return sys.getsizeof(data)
        sample = data[: self._SIZE_SAMPLE]
        total = 0
        for row in sample:
            total += sys.getsizeof(row)
            if type(row) is tuple:
                for value in row:
                    total += sys.getsizeof(value)
        per_row = total / len(sample)
        return int(sys.getsizeof(data) + per_row * n)

    def __len__(self) -> int:
        if self._released_card is not None:
            return self._released_card
        return len(self.data)

    def __iter__(self):
        return iter(self.require_data())

    def __repr__(self) -> str:
        state = " (released)" if self.released else ""
        return (
            f"CollectionChannel(n={len(self)}, "
            f"from={self.producer_platform!r}{state})"
        )


#: array typecodes: int64 for exact ints, IEEE double for floats — both
#: round-trip Python ``int``/``float`` values without loss
_INT_CODE = "q"
_FLOAT_CODE = "d"


class ColumnarChannel(CollectionChannel):
    """A struct-of-arrays channel for uniformly-typed numeric quanta.

    Rows of exact-typed ``int``/``float`` tuples (or bare scalars) are
    packed into one stdlib ``array.array`` per column: ~10x denser than
    a list of tuples of boxed numbers, which is what lets iterative
    numeric apps (PageRank ranks, ML model state) bound the memory of
    their per-iteration hand-offs.

    The contract mirrors Shark's columnar in-memory store scaled down to
    this runtime:

    * **opt-in** — the Executor only tries the conversion when its
      ``columnar`` flag is set; ineligible data (mixed types, bools,
      non-tuples, int64 overflow) falls back to a plain
      :class:`CollectionChannel` (:meth:`from_rows` returns ``None``);
    * **explicit conversion costs** — the executor charges
      ``columnar.ingest`` when packing and ``columnar.egest`` when a
      consumer unpacks, exactly like a movement hop;
    * **byte-identical round trip** — eligibility requires exact
      ``type(v) is int/float`` per column (``bool`` is an ``int``
      subclass and is deliberately ineligible), so materialised rows
      compare equal to the originals;
    * **refcounting** — :meth:`release` drops the column buffers like
      the base class drops its list, keeping the cardinality.
    """

    __slots__ = ("_columns", "_scalar", "_card")

    def __init__(
        self,
        columns: list[array.array],
        scalar: bool,
        card: int,
        producer_platform: str,
    ):
        # deliberately does not call CollectionChannel.__init__: the
        # payload lives in the column buffers until first materialisation
        self._columns = columns
        self._scalar = scalar
        self._card = card
        self.data = None  # lazily materialised row view
        self.producer_platform = producer_platform
        self._released_card = None

    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls, data: Sequence[Any], producer_platform: str
    ) -> "ColumnarChannel | None":
        """Pack ``data`` into columns, or ``None`` when ineligible.

        Eligible data is a non-empty sequence of uniform-width tuples
        whose columns are uniformly exact ``int`` or exact ``float``,
        or a sequence of uniform bare ``int``/``float`` scalars.
        """
        if not data:
            return None
        first = data[0]
        if type(first) is tuple:
            width = len(first)
            if width == 0:
                return None
            codes = []
            for value in first:
                if type(value) is int:
                    codes.append(_INT_CODE)
                elif type(value) is float:
                    codes.append(_FLOAT_CODE)
                else:
                    return None
            for row in data:
                if type(row) is not tuple or len(row) != width:
                    return None
            columns = []
            for values, code in zip(zip(*data), codes):
                kind = int if code is _INT_CODE else float
                if any(type(v) is not kind for v in values):
                    return None
                try:
                    columns.append(array.array(code, values))
                except OverflowError:  # ints beyond int64
                    return None
            return cls(columns, False, len(data), producer_platform)
        if type(first) is int or type(first) is float:
            kind = type(first)
            if any(type(v) is not kind for v in data):
                return None
            code = _INT_CODE if kind is int else _FLOAT_CODE
            try:
                column = array.array(code, data)
            except OverflowError:
                return None
            return cls([column], True, len(data), producer_platform)
        return None

    @classmethod
    def from_batch(
        cls, batch: ColumnarBatch, producer_platform: str
    ) -> "ColumnarChannel | None":
        """Adopt a columnar-native batch's buffers without repacking.

        The columnar-to-columnar hand-off path: when an atom's output is
        already a :class:`~repro.core.physical.columnar.ColumnarBatch`,
        the channel shares its column buffers zero-copy — no row
        materialisation, no per-value type audit (native kernels only
        emit layouts that round-trip).  Returns ``None`` for empty
        batches so the caller falls back to a plain channel exactly
        where :meth:`from_rows` would (keeping the ledger sequence
        identical between the native and egest-per-consumer modes).
        """
        if len(batch) == 0:
            return None
        return cls(
            list(batch.columns), batch.scalar, len(batch), producer_platform
        )

    # ------------------------------------------------------------------
    @property
    def scalar(self) -> bool:
        """Whether the layout is a single column of bare values."""
        return self._scalar

    @property
    def columns(self) -> list[array.array]:
        """The packed column buffers (empty once released)."""
        return self._columns

    @property
    def width(self) -> int:
        """Number of columns (1 for scalar layouts)."""
        return len(self._columns)

    def column(self, index: int) -> array.array:
        """One packed column buffer."""
        return self._columns[index]

    def require_data(self) -> list[Any]:
        """Materialise (and cache) the row view of the columns."""
        if self._released_card is not None:
            raise ExecutionError(
                "channel payload was released by refcounting but is still "
                f"being consumed (producer={self.producer_platform!r}); "
                "this is a consumer-count bug"
            )
        if self.data is None:
            if self._scalar:
                self.data = list(self._columns[0])
            else:
                self.data = list(zip(*self._columns))
        return self.data

    def batch(self) -> ColumnarBatch:
        """A columnar-native view sharing this channel's buffers.

        The elided hand-off: instead of :meth:`require_data`'s row
        materialisation, an eligible consumer receives the buffers
        themselves.  The view holds its own references, so releasing the
        channel (refcounting) does not pull buffers out from under a
        batch still being consumed.
        """
        if self._released_card is not None:
            raise ExecutionError(
                "channel payload was released by refcounting but is still "
                f"being consumed (producer={self.producer_platform!r}); "
                "this is a consumer-count bug"
            )
        return ColumnarBatch(list(self._columns), self._scalar, self._card)

    def payload_bytes(self) -> int:
        """Exact byte size of the packed column buffers.

        ``array.buffer_info()`` gives the element count actually stored,
        so this is the true buffer payload (excluding the small per-array
        object header), not an estimate.  Released channels report 0.
        """
        if self._released_card is not None:
            return 0
        return sum(
            col.buffer_info()[1] * col.itemsize for col in self._columns
        )

    def _drop_payload(self) -> None:
        self._columns = []
        self.data = None

    def __len__(self) -> int:
        if self._released_card is not None:
            return self._released_card
        return self._card

    def __repr__(self) -> str:
        state = " (released)" if self.released else ""
        layout = "scalar" if self._scalar else f"width={self.width}"
        return (
            f"ColumnarChannel(n={len(self)}, {layout}, "
            f"from={self.producer_platform!r}{state})"
        )


# ----------------------------------------------------------------------
# shared-memory transport (process execution mode)
# ----------------------------------------------------------------------

#: segment-name prefix; includes the coordinator pid so parallel test
#: runs never collide and the leak-check fixture can scan ``/dev/shm``
#: for exactly this process's segments
_SHM_PREFIX = "rpshm"

#: names of segments this process created and must eventually unlink
_live_segments: set[str] = set()


def shm_segment_name(nonce: int, index: int, position: int) -> str:
    """A unique, short (macOS caps names at 31 chars) segment name for
    one atom output: coordinator pid × per-run nonce × plan index ×
    output position."""
    return f"{_SHM_PREFIX}{os.getpid():x}g{nonce:x}i{index}o{position}"


def _untrack_shm(shm) -> None:
    """Opt a segment out of the stdlib resource tracker.

    On the supported interpreters ``SharedMemory`` registers the name on
    *create and on every attach* (bpo-39959), so tracker-driven cleanup
    would double-unlink and spam warnings.  Lifetime is managed by the
    registry below instead.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


def register_segment(name: str) -> None:
    """Track ``name`` as a segment this process is responsible for.

    The coordinator registers names *before* dispatching the task that
    creates them, so a crash between dispatch and completion still
    unlinks (creation that never happened is tolerated by
    :func:`unlink_segment`).
    """
    _live_segments.add(name)


def unlink_segment(name: str) -> None:
    """Unlink ``name`` if it exists and forget it either way.

    Idempotent and tolerant of never-created / already-unlinked names —
    exactly what the scheduler's failure paths need.
    """
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        pass
    else:
        # No _untrack_shm here: ``unlink()`` unregisters internally,
        # balancing the register the attach just performed; untracking
        # as well would double-unregister and make the tracker process
        # log a KeyError.
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - unlink race
            _untrack_shm(shm)
    _live_segments.discard(name)


def live_segments() -> frozenset[str]:
    """Names of segments currently registered (the leak-check surface)."""
    return frozenset(_live_segments)


def reset_segment_tracking() -> None:
    """Forget every tracked name without unlinking.

    Called at forked-worker start: the inherited registry belongs to
    the coordinator, and a worker must never unlink the coordinator's
    live segments on its way out.
    """
    _live_segments.clear()


@atexit.register
def _unlink_segments_at_exit() -> None:  # pragma: no cover - teardown
    """Backstop: abnormal interpreter teardown must not leak segments."""
    for name in list(_live_segments):
        try:
            unlink_segment(name)
        except Exception:
            pass


@dataclass(frozen=True)
class ShmSegmentDescriptor:
    """Everything needed to rebuild a columnar channel from a segment.

    Small and picklable — this is what actually crosses the process
    boundary; the buffer payload never enters the result pickle.
    ``nbytes`` is the exact :meth:`ColumnarChannel.payload_bytes` of the
    exported channel (column counts × item sizes), which is what lets
    the profiler's ``shm_bytes`` accounting reconcile byte-for-byte.
    """

    name: str
    codes: tuple[str, ...]
    counts: tuple[int, ...]
    scalar: bool
    card: int
    producer_platform: str
    nbytes: int


def export_columnar(
    channel: ColumnarChannel, name: str
) -> ShmSegmentDescriptor:
    """Copy a columnar channel's buffers into one shared-memory segment.

    One buffer-protocol copy per column (``memoryview(col).cast("B")``
    straight into the mapping) — the payload is never pickled.  The
    caller owns the name (the coordinator pre-registers it); the segment
    is closed here and re-attached lazily by consumers.
    """
    from multiprocessing import shared_memory

    columns = channel.columns
    codes = tuple(col.typecode for col in columns)
    counts = tuple(col.buffer_info()[1] for col in columns)
    nbytes = channel.payload_bytes()
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
    _untrack_shm(shm)
    try:
        buf = shm.buf
        offset = 0
        for col in columns:
            raw = memoryview(col).cast("B")
            buf[offset:offset + len(raw)] = raw
            offset += len(raw)
    finally:
        shm.close()
    return ShmSegmentDescriptor(
        name=name,
        codes=codes,
        counts=counts,
        scalar=channel.scalar,
        card=len(channel),
        producer_platform=channel.producer_platform,
        nbytes=nbytes,
    )


class ShmColumnarChannel(ColumnarChannel):
    """A columnar channel whose buffers live in a shared-memory segment.

    Metadata-only until someone actually consumes the payload:
    ``len``/``width``/``scalar``/``payload_bytes`` answer from the
    descriptor, so coordinator bookkeeping (movement pricing, journal
    output shapes, refcounting) never maps the segment.  First real
    consumption (:meth:`require_data`, :meth:`batch`, :attr:`columns`)
    attaches, rebuilds the stdlib ``array`` columns (kernels need the
    full ``array`` API — ``typecode``, ``buffer_info`` — which a
    memoryview cannot provide), caches them and detaches immediately.

    Exactly one instance per segment is the *owner* (the coordinator's
    published copy): refcount release unlinks through it.  Worker-side
    instances rebuilt from shipped descriptors only ever attach.
    """

    __slots__ = ("_descriptor", "_owner")

    def __init__(self, descriptor: ShmSegmentDescriptor, *, owner: bool):
        # mirrors ColumnarChannel.__init__ with lazily-attached columns
        self._columns: list[array.array] | None = None  # type: ignore[assignment]
        self._scalar = descriptor.scalar
        self._card = descriptor.card
        self.data = None
        self.producer_platform = descriptor.producer_platform
        self._released_card = None
        self._descriptor = descriptor
        self._owner = owner

    @property
    def descriptor(self) -> ShmSegmentDescriptor:
        """The transport descriptor (re-shipped to consumer workers)."""
        return self._descriptor

    def _materialise(self) -> list[array.array]:
        """Attach the segment, rebuild + cache the columns, detach."""
        if self._columns is None:
            from multiprocessing import shared_memory

            descriptor = self._descriptor
            try:
                shm = shared_memory.SharedMemory(name=descriptor.name)
            except FileNotFoundError:
                raise ExecutionError(
                    f"shared-memory segment {descriptor.name!r} vanished "
                    "before its channel was consumed (segment-lifetime bug)"
                ) from None
            _untrack_shm(shm)
            try:
                buf = shm.buf
                columns = []
                offset = 0
                for code, count in zip(descriptor.codes, descriptor.counts):
                    column = array.array(code)
                    size = count * column.itemsize
                    column.frombytes(buf[offset:offset + size])
                    columns.append(column)
                    offset += size
            finally:
                shm.close()
            self._columns = columns
        return self._columns

    def localize(self) -> None:
        """Copy the payload into process-local buffers.

        Called by the scheduler before it unlinks a run's segments so a
        channel still needed afterwards (collect sink, failover bound
        source) survives the teardown.  No-op when already released or
        already materialised.
        """
        if self._released_card is None:
            self._materialise()

    # -- metadata from the descriptor (no attach) ----------------------
    @property
    def columns(self) -> list[array.array]:
        return self._materialise()

    @property
    def width(self) -> int:
        return len(self._descriptor.codes)

    def column(self, index: int) -> array.array:
        return self._materialise()[index]

    def require_data(self) -> list[Any]:
        if self._released_card is None:
            self._materialise()
        return super().require_data()

    def batch(self) -> ColumnarBatch:
        if self._released_card is None:
            self._materialise()
        return super().batch()

    def payload_bytes(self) -> int:
        if self._released_card is not None:
            return 0
        return self._descriptor.nbytes

    def _drop_payload(self) -> None:
        self._columns = []
        self.data = None
        if self._owner:
            # Deterministic unlink point: the refcounter released the
            # last consumer's hold on this hand-off.
            unlink_segment(self._descriptor.name)
