"""Run-time context threaded through atom execution.

Carries the cross-cutting services platforms need while executing a task
atom: bound loop-state sources, the loop-invariant source cache, the
storage catalog, the platform health tracker (circuit breakers +
quarantines, see :mod:`repro.core.resilience`) and failure injection for
resilience tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

# Re-exported for backward compatibility: FailureInjector historically
# lived here; it now belongs to the resilience subsystem.
from repro.core.resilience import FailureInjector, HealthTracker

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.catalog import Catalog

__all__ = ["FailureInjector", "RuntimeContext"]


class RuntimeContext:
    """Mutable per-execution state shared by the executor and platforms."""

    def __init__(
        self,
        catalog: "Catalog | None" = None,
        failure_injector: FailureInjector | None = None,
        checkpoint: "Any | None" = None,
        health: HealthTracker | None = None,
        tracer: "Any | None" = None,
        journal: "Any | None" = None,
        crash_injector: "Any | None" = None,
    ):
        self.catalog = catalog
        self.failure_injector = failure_injector
        #: optional :class:`~repro.core.recovery.RunJournal`: a durable
        #: write-ahead record of atom completions enabling crash resume.
        #: Deactivated (set to None) by a failover, like ``checkpoint``.
        self.journal = journal
        #: optional :class:`~repro.core.recovery.CrashInjector` for chaos
        #: tests: hard-aborts the run around a chosen journal commit.
        self.crash_injector = crash_injector
        #: optional :class:`~repro.core.observability.spans.Tracer`; when
        #: attached the Executor and platforms open spans (atoms,
        #: operators, movement) and ledgers advance its virtual clock.
        #: None (the default) keeps the whole tracing path allocation-free.
        self.tracer = tracer
        #: optional CheckpointManager making top-level atoms resumable
        self.checkpoint = checkpoint
        #: Per-platform failure accounting, circuit breakers and
        #: quarantines.  Reuse one RuntimeContext (or pass a shared
        #: tracker) across executions to carry health knowledge over.
        self.health = health or HealthTracker()
        #: Loop-state bindings: physical LoopInput operator id -> current state.
        self.bound_sources: dict[int, list[Any]] = {}
        #: Cache of loop-invariant source results:
        #: (platform name, operator id) -> native dataset.
        self.source_cache: dict[tuple[str, int], Any] = {}
        #: When True, source operators populate ``source_cache`` (set by the
        #: executor while running loop bodies).
        self.caching_enabled = False
