"""Run-time context threaded through atom execution.

Carries the cross-cutting services platforms need while executing a task
atom: bound loop-state sources, the loop-invariant source cache, the
storage catalog, and failure injection for resilience tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable  # noqa: F401

from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.catalog import Catalog


class FailureInjector:
    """Deterministically fails chosen atoms to exercise executor retries.

    ``failures`` maps an atom ordinal (the i-th atom execution, 0-based)
    to the number of times it should fail before succeeding.
    """

    def __init__(self, failures: dict[int, int] | None = None):
        self.failures = dict(failures or {})
        self._execution_counter = -1
        self._attempts: dict[int, int] = {}

    def next_atom(self) -> int:
        """Advance to the next atom execution; returns its ordinal."""
        self._execution_counter += 1
        return self._execution_counter

    def check(self, ordinal: int) -> None:
        """Raise :class:`ExecutionError` if this attempt should fail."""
        budget = self.failures.get(ordinal, 0)
        attempt = self._attempts.get(ordinal, 0)
        self._attempts[ordinal] = attempt + 1
        if attempt < budget:
            raise ExecutionError(
                f"injected failure (atom ordinal {ordinal}, attempt {attempt})"
            )


class RuntimeContext:
    """Mutable per-execution state shared by the executor and platforms."""

    def __init__(
        self,
        catalog: "Catalog | None" = None,
        failure_injector: FailureInjector | None = None,
        checkpoint: "Any | None" = None,
    ):
        self.catalog = catalog
        self.failure_injector = failure_injector
        #: optional CheckpointManager making top-level atoms resumable
        self.checkpoint = checkpoint
        #: Loop-state bindings: physical LoopInput operator id -> current state.
        self.bound_sources: dict[int, list[Any]] = {}
        #: Cache of loop-invariant source results:
        #: (platform name, operator id) -> native dataset.
        self.source_cache: dict[tuple[str, int], Any] = {}
        #: When True, source operators populate ``source_cache`` (set by the
        #: executor while running loop bodies).
        self.caching_enabled = False
