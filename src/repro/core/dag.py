"""Generic operator-DAG machinery shared by the three plan layers.

The logical, physical and execution layers of the abstraction all arrange
operators in a directed acyclic graph; only the operator vocabulary
differs.  This module provides the shared graph container with wiring,
validation, traversal and pretty-printing, so each layer stays focused on
its operator semantics.
"""

from __future__ import annotations

import itertools
from typing import Callable, Generic, Iterable, Iterator, Sequence, TypeVar

from repro.errors import PlanError, ValidationError

_OPERATOR_IDS = itertools.count(1)


class OperatorNode:
    """Base class for operators at any layer.

    Subclasses declare ``num_inputs`` (0 for sources).  Every operator in
    this reproduction produces exactly one output stream; fan-out is
    modelled by wiring several consumers to the same producer.
    """

    num_inputs: int = 1

    def __init__(self, name: str | None = None):
        self.id: int = next(_OPERATOR_IDS)
        self.name: str = name or type(self).__name__

    @property
    def is_source(self) -> bool:
        """True when the operator consumes no upstream operator."""
        return self.num_inputs == 0

    def describe(self) -> str:
        """One-line human-readable description used by plan printing."""
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} #{self.id} {self.name!r}>"


OpT = TypeVar("OpT", bound=OperatorNode)


class OperatorGraph(Generic[OpT]):
    """A DAG of operators with explicit input wiring.

    The graph owns no execution semantics; it only maintains structure:
    which operators exist, which operators feed which input slots, and the
    resulting topological order.
    """

    def __init__(self) -> None:
        self._operators: list[OpT] = []
        self._inputs: dict[int, list[OpT]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, operator: OpT, inputs: Sequence[OpT] = ()) -> OpT:
        """Add ``operator`` fed by ``inputs`` (one producer per input slot).

        Returns the operator to allow fluent plan building.
        """
        if operator.id in self._inputs:
            raise PlanError(f"operator {operator!r} already added to this plan")
        if len(inputs) != operator.num_inputs:
            raise PlanError(
                f"{operator!r} expects {operator.num_inputs} input(s), "
                f"got {len(inputs)}"
            )
        for producer in inputs:
            if producer.id not in self._inputs:
                raise PlanError(
                    f"input {producer!r} of {operator!r} is not part of this plan"
                )
        self._operators.append(operator)
        self._inputs[operator.id] = list(inputs)
        return operator

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def operators(self) -> tuple[OpT, ...]:
        """All operators, in insertion order."""
        return tuple(self._operators)

    def inputs_of(self, operator: OpT) -> tuple[OpT, ...]:
        """The producers wired to ``operator``'s input slots, in order."""
        try:
            return tuple(self._inputs[operator.id])
        except KeyError:
            raise PlanError(f"{operator!r} is not part of this plan") from None

    def consumers_of(self, operator: OpT) -> tuple[OpT, ...]:
        """All operators that read ``operator``'s output."""
        self.inputs_of(operator)  # membership check
        return tuple(
            op for op in self._operators if operator in self._inputs[op.id]
        )

    @property
    def sources(self) -> tuple[OpT, ...]:
        """Operators with no inputs."""
        return tuple(op for op in self._operators if op.is_source)

    @property
    def sinks(self) -> tuple[OpT, ...]:
        """Operators whose output nothing consumes (the plan results)."""
        consumed: set[int] = set()
        for op in self._operators:
            for producer in self._inputs[op.id]:
                consumed.add(producer.id)
        return tuple(op for op in self._operators if op.id not in consumed)

    def __len__(self) -> int:
        return len(self._operators)

    def __contains__(self, operator: OpT) -> bool:
        return operator.id in self._inputs

    def __iter__(self) -> Iterator[OpT]:
        return iter(self._operators)

    # ------------------------------------------------------------------
    # traversal and validation
    # ------------------------------------------------------------------
    def topological_order(self) -> list[OpT]:
        """Return the operators in a producers-before-consumers order.

        Raises :class:`PlanError` when the wiring contains a cycle (which
        cannot happen via :meth:`add` alone but can after plan surgery).
        """
        in_degree = {op.id: len(self._inputs[op.id]) for op in self._operators}
        by_id = {op.id: op for op in self._operators}
        ready = [op for op in self._operators if in_degree[op.id] == 0]
        order: list[OpT] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for consumer in self._operators:
                if current in self._inputs[consumer.id]:
                    count = self._inputs[consumer.id].count(current)
                    in_degree[consumer.id] -= count
                    if in_degree[consumer.id] == 0:
                        ready.append(by_id[consumer.id])
        if len(order) != len(self._operators):
            raise PlanError("plan wiring contains a cycle")
        return order

    def validate(self) -> None:
        """Check structural invariants; raise :class:`ValidationError` if broken.

        A valid plan has at least one source, at least one sink, no cycles,
        and every non-source operator reachable from a source.
        """
        if not self._operators:
            raise ValidationError("plan is empty")
        if not self.sources:
            raise ValidationError("plan has no source operator")
        try:
            order = self.topological_order()
        except PlanError as exc:
            raise ValidationError(str(exc)) from exc
        reachable: set[int] = set()
        for op in order:
            producers = self._inputs[op.id]
            if not producers:
                reachable.add(op.id)
            elif all(p.id in reachable for p in producers):
                reachable.add(op.id)
        unreachable = [op for op in self._operators if op.id not in reachable]
        if unreachable:
            raise ValidationError(f"operators not reachable from sources: {unreachable!r}")

    def explain(self) -> str:
        """Return a multi-line, indented rendering of the DAG for humans."""
        lines = []
        for op in self.topological_order():
            producers = ", ".join(f"#{p.id}" for p in self.inputs_of(op))
            suffix = f" <- [{producers}]" if producers else ""
            lines.append(f"#{op.id} {op.describe()}{suffix}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # surgery (used by optimizer rewrites)
    # ------------------------------------------------------------------
    def replace_input(self, operator: OpT, old: OpT, new: OpT) -> None:
        """Rewire one input slot of ``operator`` from ``old`` to ``new``."""
        slots = self._inputs[operator.id]
        for index, producer in enumerate(slots):
            if producer is old:
                slots[index] = new
                return
        raise PlanError(f"{old!r} is not an input of {operator!r}")

    def absorb(self, other: "OperatorGraph[OpT]") -> None:
        """Merge all operators and wiring of ``other`` into this graph.

        Used when a binary operator joins two independently built plans.
        ``other`` must be disjoint from this graph and should be discarded
        afterwards.
        """
        for op in other._operators:
            if op.id in self._inputs:
                raise PlanError(f"operator {op!r} present in both graphs")
        self._operators.extend(other._operators)
        self._inputs.update(other._inputs)

    def insert_between(self, producer: OpT, consumer: OpT, op: OpT) -> None:
        """Insert unary ``op`` on the edge ``producer -> consumer``.

        ``op`` may already be part of the graph (e.g. when one inserted
        operator serves several edges) or is added with ``producer`` as its
        input.
        """
        if op.num_inputs != 1:
            raise PlanError(f"can only insert unary operators, got {op!r}")
        if op.id not in self._inputs:
            self.add(op, [producer])
        self.replace_input(consumer, producer, op)

    def remove_unary(self, op: OpT) -> None:
        """Remove a unary operator, splicing its consumers onto its input."""
        producers = self._inputs.get(op.id)
        if producers is None:
            raise PlanError(f"{op!r} is not part of this plan")
        if len(producers) != 1:
            raise PlanError(f"can only remove unary operators, got {op!r}")
        producer = producers[0]
        for consumer in self.consumers_of(op):
            slots = self._inputs[consumer.id]
            for index, candidate in enumerate(slots):
                if candidate is op:
                    slots[index] = producer
        self._operators.remove(op)
        del self._inputs[op.id]

    def remove_isolated(self, op: OpT) -> None:
        """Remove a node with no inputs and no consumers."""
        if op.id not in self._inputs:
            raise PlanError(f"{op!r} is not part of this plan")
        if self._inputs[op.id]:
            raise PlanError(f"{op!r} still has inputs")
        if self.consumers_of(op):
            raise PlanError(f"{op!r} still has consumers")
        self._operators.remove(op)
        del self._inputs[op.id]

    def replace_node(self, old: OpT, new: OpT) -> None:
        """Swap ``old`` for ``new`` in place, transferring all wiring.

        ``new`` must have the same input arity and must not already be in
        the graph.
        """
        if old.id not in self._inputs:
            raise PlanError(f"{old!r} is not part of this plan")
        if new.id in self._inputs:
            raise PlanError(f"{new!r} is already part of this plan")
        if old.num_inputs != new.num_inputs:
            raise PlanError(
                f"replacement {new!r} has arity {new.num_inputs}, "
                f"expected {old.num_inputs}"
            )
        self._operators[self._operators.index(old)] = new
        self._inputs[new.id] = self._inputs.pop(old.id)
        for op in self._operators:
            slots = self._inputs[op.id]
            for index, producer in enumerate(slots):
                if producer is old:
                    slots[index] = new

    def subgraph(self, members: Iterable[OpT]) -> "OperatorGraph[OpT]":
        """Build a new graph over ``members``, keeping edges internal to them.

        Edges from non-members are dropped; callers are responsible for
        tracking such boundary edges (the execution layer does this when it
        cuts task atoms).
        """
        member_set = {op.id for op in members}
        graph: OperatorGraph[OpT] = OperatorGraph()
        graph._operators = [op for op in self._operators if op.id in member_set]
        for op in graph._operators:
            graph._inputs[op.id] = [
                p for p in self._inputs[op.id] if p.id in member_set
            ]
        return graph


def walk_down(
    graph: OperatorGraph[OpT], start: OpT, visit: Callable[[OpT], None]
) -> None:
    """Depth-first walk from ``start`` towards the sinks, calling ``visit``."""
    seen: set[int] = set()
    stack = [start]
    while stack:
        current = stack.pop()
        if current.id in seen:
            continue
        seen.add(current.id)
        visit(current)
        stack.extend(graph.consumers_of(current))
