"""Progressive (adaptive) re-optimization.

The paper's Executor "monitors the progress of plan execution" (§4.2);
this module closes the loop the monitoring enables — and that the RHEEM
line of work later shipped as *progressive optimization*: when the
cardinality observed at a task-atom boundary contradicts the optimizer's
estimate badly enough, execution pauses, the **remaining** plan is
rebuilt with the materialised intermediate data injected as exact-size
sources, and the multi-platform optimizer re-runs over it — so the tail
of the plan is placed using *real* cardinalities instead of stale
estimates.

Mechanics:

* atoms execute one at a time through the normal Executor machinery
  (retries, movement charges, loops, monitoring events all apply);
* after each atom, its boundary outputs are compared against the round's
  estimates; a misestimate ≥ ``replan_factor`` with work still pending
  triggers a replan (bounded by ``max_replans``);
* the remainder plan reuses the original operator objects (ids — and
  therefore channels and collect sinks — stay stable) and replaces every
  already-computed producer with an in-memory source holding the actual
  channel data;
* platform start-ups are charged once across all rounds.

Variant choices committed in earlier rounds are kept (their alternates
were consumed); re-optimization re-decides *platforms* for the tail.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.channels import CollectionChannel
from repro.core.executor import ExecutionResult, Executor
from repro.core.execution.plan import ExecutionPlan, LoopAtom, TaskAtom
from repro.core.metrics import CardinalityMisestimate, ExecutionMetrics
from repro.core.optimizer.cost import MovementCostModel
from repro.core.physical.plan import PhysicalPlan
from repro.core.replan import plan_operator_ids, remainder_plan
from repro.core.runtime import RuntimeContext
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.optimizer.enumerator import MultiPlatformOptimizer


class ProgressiveExecutor(Executor):
    """An Executor that re-optimizes the plan tail on misestimates."""

    def __init__(
        self,
        task_optimizer: "MultiPlatformOptimizer",
        movement: MovementCostModel | None = None,
        max_retries: int = 2,
        replan_factor: float = 4.0,
        max_replans: int = 3,
    ):
        super().__init__(movement or task_optimizer.movement, max_retries)
        self.task_optimizer = task_optimizer
        self.replan_factor = replan_factor
        self.max_replans = max_replans

    # ------------------------------------------------------------------
    def execute_progressively(
        self,
        physical: PhysicalPlan,
        runtime: RuntimeContext | None = None,
        forced_platform: str | None = None,
    ) -> tuple[ExecutionResult, int]:
        """Run ``physical`` with adaptive replanning.

        Returns the execution result and the number of replans performed.
        """
        import time

        runtime = runtime or RuntimeContext()
        tracer = getattr(runtime, "tracer", None)
        self._tracer = tracer
        metrics = ExecutionMetrics(
            registry=tracer.registry if tracer is not None else None
        )
        metrics.ledger.tracer = tracer
        started = time.perf_counter()
        channels: dict[int, CollectionChannel] = {}
        charged_platforms: set[str] = set()
        collect_sinks = physical.collect_sinks()
        remaining = physical
        replans = 0

        while True:
            execution = self.task_optimizer.optimize(
                remaining, forced_platform=forced_platform, tracer=tracer
            )
            models = {
                p.name: p.cost_model for p in self.task_optimizer.platforms
            }
            for platform in execution.platforms:
                if platform.name not in charged_platforms:
                    charged_platforms.add(platform.name)
                    metrics.ledger.charge(
                        "startup", platform.cost_model.startup_ms(), platform.name
                    )
            self._estimates = execution.estimates

            replanned = False
            for index, atom in enumerate(execution.atoms):
                if isinstance(atom, LoopAtom):
                    self._run_loop_atom(atom, channels, runtime, metrics, models)
                else:
                    self._run_task_atom(atom, channels, runtime, metrics, models)
                tail_remains = index + 1 < len(execution.atoms)
                if (
                    tail_remains
                    and replans < self.max_replans
                    and self._atom_misestimated(atom, channels, execution)
                ):
                    executed = set()
                    for done in execution.atoms[: index + 1]:
                        executed |= plan_operator_ids(done)
                    remaining = remainder_plan(remaining, executed, channels)
                    replans += 1
                    replanned = True
                    metrics.ledger.charge(
                        "replan", 0.5, atom.platform.name, atom.id
                    )
                    break
            if not replanned:
                break

        outputs: dict[int, list[Any]] = {}
        for sink in collect_sinks:
            if sink.id not in channels:
                raise ExecutionError(
                    f"collect sink {sink!r} produced no channel"
                )
            outputs[sink.id] = channels[sink.id].require_data()
        metrics.wall_ms = (time.perf_counter() - started) * 1000.0
        self._tracer = None
        return ExecutionResult(outputs, metrics), replans

    # ------------------------------------------------------------------
    def _atom_misestimated(
        self,
        atom: TaskAtom | LoopAtom,
        channels: dict[int, CollectionChannel],
        execution: ExecutionPlan,
    ) -> bool:
        for op_id in atom.output_ids:
            estimated = execution.estimates.get(op_id)
            channel = channels.get(op_id)
            if estimated is None or channel is None:
                continue
            report = CardinalityMisestimate(op_id, estimated, len(channel))
            if report.factor >= self.replan_factor:
                return True
        return False


#: backward-compatible aliases (the helpers moved to repro.core.replan)
_plan_operator_ids = plan_operator_ids
_remainder_plan = remainder_plan
