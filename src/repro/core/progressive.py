"""Progressive (adaptive) re-optimization.

The paper's Executor "monitors the progress of plan execution" (§4.2);
this module closes the loop the monitoring enables — and that the RHEEM
line of work later shipped as *progressive optimization*: when the
cardinality observed at a task-atom boundary contradicts the optimizer's
estimate badly enough, execution pauses, the **remaining** plan is
rebuilt with the materialised intermediate data injected as exact-size
sources, and the multi-platform optimizer re-runs over it — so the tail
of the plan is placed using *real* cardinalities instead of stale
estimates.

Mechanics:

* atoms execute one at a time through the normal Executor machinery
  (retries, movement charges, loops, monitoring events all apply);
* after each atom, its boundary outputs are compared against the round's
  estimates.  By default the run's misestimate-factor *distribution*
  drives the decision: boundary factors accumulate in a per-round
  histogram window (the same buckets as the ``misestimate_factor``
  metric) and a replan fires when the window's **p90 drifts above the
  configured band** — one gross outlier or a broad pattern of moderate
  misestimates both qualify, while a single noisy boundary amid many
  good ones does not.  ``REPRO_NO_CALIBRATION=1`` falls back to the
  legacy fixed per-boundary ``replan_factor`` threshold (byte-identical
  pre-calibration behaviour).  Replans stay bounded by ``max_replans``;
* with a :class:`~repro.core.optimizer.calibration.CalibrationStore`
  attached, every boundary observation is folded into cross-run priors
  at the end of the run, and (via a
  :class:`~repro.core.optimizer.cardinality.CalibratedCardinalityEstimator`
  on the task optimizer) the next run starts from corrected estimates —
  so runs 2..N misestimate less and replan less;
* the remainder plan reuses the original operator objects (ids — and
  therefore channels and collect sinks — stay stable) and replaces every
  already-computed producer with an in-memory source holding the actual
  channel data;
* platform start-ups are charged once across all rounds.

Variant choices committed in earlier rounds are kept (their alternates
were consumed); re-optimization re-decides *platforms* for the tail.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.channels import CollectionChannel
from repro.core.executor import ExecutionResult, Executor
from repro.core.execution.plan import ExecutionPlan, LoopAtom, TaskAtom
from repro.core.metrics import (
    MISESTIMATE_BUCKETS,
    CardinalityMisestimate,
    ExecutionMetrics,
)
from repro.core.observability.registry import HistogramSeries
from repro.core.optimizer.calibration import calibration_enabled
from repro.core.optimizer.cost import MovementCostModel
from repro.core.physical.plan import PhysicalPlan
from repro.core.replan import plan_operator_ids, remainder_plan
from repro.core.runtime import RuntimeContext
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.optimizer.calibration import CalibrationStore
    from repro.core.optimizer.enumerator import MultiPlatformOptimizer


class ProgressiveExecutor(Executor):
    """An Executor that re-optimizes the plan tail on misestimates.

    The replan trigger is *distributional* by default: per optimization
    round, boundary misestimate factors accumulate into a histogram
    window (:data:`~repro.core.metrics.MISESTIMATE_BUCKETS` resolution)
    and a replan fires when the window p90 reaches the high edge of
    ``drift_band``.  The window resets each round — after a replan the
    tail is re-estimated from exact materialised cardinalities, so stale
    drift must not keep re-triggering.  Under ``REPRO_NO_CALIBRATION=1``
    the legacy fixed per-boundary ``replan_factor`` check runs instead.
    """

    def __init__(
        self,
        task_optimizer: "MultiPlatformOptimizer",
        movement: MovementCostModel | None = None,
        max_retries: int = 2,
        replan_factor: float = 4.0,
        max_replans: int = 3,
        drift_band: tuple[float, float] = (1.0, 4.0),
        calibration: "CalibrationStore | None" = None,
    ):
        super().__init__(
            movement or task_optimizer.movement,
            max_retries,
            calibration=calibration,
        )
        self.task_optimizer = task_optimizer
        self.replan_factor = replan_factor
        self.max_replans = max_replans
        low, high = drift_band
        if not (1.0 <= low <= high):
            raise ValueError(
                f"drift_band must satisfy 1.0 <= low <= high, got {drift_band}"
            )
        #: (low, high): a replan fires when the round's p90 folded factor
        #: reaches ``high``; ``low`` is the healthy edge reported as
        #: converged in span attributes / the explain calibration report.
        self.drift_band = (low, high)

    # ------------------------------------------------------------------
    def execute_progressively(
        self,
        physical: PhysicalPlan,
        runtime: RuntimeContext | None = None,
        forced_platform: str | None = None,
    ) -> tuple[ExecutionResult, int]:
        """Run ``physical`` with adaptive replanning.

        Returns the execution result and the number of replans performed.
        """
        import time

        runtime = runtime or RuntimeContext()
        tracer = getattr(runtime, "tracer", None)
        self._tracer = tracer
        metrics = ExecutionMetrics(
            registry=tracer.registry if tracer is not None else None
        )
        metrics.ledger.tracer = tracer
        started = time.perf_counter()
        channels: dict[int, CollectionChannel] = {}
        charged_platforms: set[str] = set()
        collect_sinks = physical.collect_sinks()
        remaining = physical
        replans = 0

        adaptive = calibration_enabled()
        while True:
            execution = self.task_optimizer.optimize(
                remaining, forced_platform=forced_platform, tracer=tracer
            )
            models = {
                p.name: p.cost_model for p in self.task_optimizer.platforms
            }
            for platform in execution.platforms:
                if platform.name not in charged_platforms:
                    charged_platforms.add(platform.name)
                    metrics.ledger.charge(
                        "startup", platform.cost_model.startup_ms(), platform.name
                    )
            self._estimates = execution.estimates
            self._estimate_kinds = execution.estimate_kinds
            self._estimate_corrections = execution.estimate_corrections

            # Per-round drift window: replans re-estimate the tail from
            # exact cardinalities, so drift evidence must not carry over.
            window = HistogramSeries(MISESTIMATE_BUCKETS)
            replanned = False
            for index, atom in enumerate(execution.atoms):
                if isinstance(atom, LoopAtom):
                    self._run_loop_atom(atom, channels, runtime, metrics, models)
                else:
                    self._run_task_atom(atom, channels, runtime, metrics, models)
                tail_remains = index + 1 < len(execution.atoms)
                if not tail_remains or replans >= self.max_replans:
                    continue
                if adaptive:
                    trigger = self._drift_exceeded(
                        atom, channels, execution, window
                    )
                else:
                    trigger = self._atom_misestimated(atom, channels, execution)
                if trigger:
                    executed = set()
                    for done in execution.atoms[: index + 1]:
                        executed |= plan_operator_ids(done)
                    remaining = remainder_plan(remaining, executed, channels)
                    replans += 1
                    replanned = True
                    if adaptive:
                        metrics.registry.counter(
                            "replans_adaptive",
                            "plan-tail replans triggered by p90 drift",
                        ).inc()
                        if tracer is not None:
                            # No span is open between atoms, so open a
                            # zero-charge one to carry the drift event.
                            from repro.core.observability.spans import (
                                KIND_OPTIMIZER,
                            )

                            with tracer.span("replan", KIND_OPTIMIZER):
                                tracer.event(
                                    "PLAN_REPLANNED",
                                    trigger="p90_drift",
                                    p90=window.quantile(0.9),
                                    band_high=self.drift_band[1],
                                    boundaries=window.n,
                                    atoms_executed=index + 1,
                                    replan=replans,
                                )
                    metrics.ledger.charge(
                        "replan", 0.5, atom.platform.name, atom.id
                    )
                    break
            if not replanned:
                break

        outputs: dict[int, list[Any]] = {}
        for sink in collect_sinks:
            if sink.id not in channels:
                raise ExecutionError(
                    f"collect sink {sink!r} produced no channel"
                )
            outputs[sink.id] = channels[sink.id].require_data()
        metrics.wall_ms = (time.perf_counter() - started) * 1000.0
        if self.calibration is not None:
            # Feed the deterministic observation sequence into the
            # cross-run priors (no-op under REPRO_NO_CALIBRATION).
            self.calibration.ingest(metrics)
        self._tracer = None
        return ExecutionResult(outputs, metrics), replans

    # ------------------------------------------------------------------
    def _drift_exceeded(
        self,
        atom: TaskAtom | LoopAtom,
        channels: dict[int, CollectionChannel],
        execution: ExecutionPlan,
        window: HistogramSeries,
    ) -> bool:
        """Fold the atom's boundary factors into the round window and
        test the p90 against the drift band's high edge.

        Infinite factors (a zero on one side of the comparison) cannot
        be bucketed; they are treated as an immediate drift breach,
        exactly as the legacy fixed threshold treated them.
        """
        breached = False
        for op_id in atom.output_ids:
            estimated = execution.estimates.get(op_id)
            channel = channels.get(op_id)
            if estimated is None or channel is None:
                continue
            factor = CardinalityMisestimate(
                op_id, estimated, len(channel)
            ).factor
            if factor == float("inf"):
                breached = True
                continue
            window.observe(factor)
        if breached:
            return True
        return window.n > 0 and window.quantile(0.9) >= self.drift_band[1]

    # ------------------------------------------------------------------
    def _atom_misestimated(
        self,
        atom: TaskAtom | LoopAtom,
        channels: dict[int, CollectionChannel],
        execution: ExecutionPlan,
    ) -> bool:
        for op_id in atom.output_ids:
            estimated = execution.estimates.get(op_id)
            channel = channels.get(op_id)
            if estimated is None or channel is None:
                continue
            report = CardinalityMisestimate(op_id, estimated, len(channel))
            if report.factor >= self.replan_factor:
                return True
        return False


#: backward-compatible aliases (the helpers moved to repro.core.replan)
_plan_operator_ids = plan_operator_ids
_remainder_plan = remainder_plan
