"""Logical plans: the DAG an application hands to the application optimizer."""

from __future__ import annotations

from typing import Sequence

from repro.core.dag import OperatorGraph
from repro.core.logical.operators import (
    CollectSink,
    LogicalOperator,
    LoopInput,
    Repeat,
)
from repro.errors import ValidationError


class LogicalPlan:
    """A DAG of logical operators plus plan-level validation.

    The fluent :class:`~repro.core.context.DataQuanta` API builds these
    incrementally; applications with their own declarative front-ends (see
    ``repro.apps.cleaning``) build them directly.
    """

    def __init__(self) -> None:
        self.graph: OperatorGraph[LogicalOperator] = OperatorGraph()

    def add(
        self, operator: LogicalOperator, inputs: Sequence[LogicalOperator] = ()
    ) -> LogicalOperator:
        """Add ``operator`` to the plan, wired to ``inputs``."""
        return self.graph.add(operator, inputs)

    def validate(self) -> None:
        """Validate structure plus logical-layer rules.

        Beyond the generic DAG invariants this checks that ``LoopInput``
        operators only appear inside ``Repeat`` bodies and that every
        ``Repeat`` body is itself valid.
        """
        self.graph.validate()
        for operator in self.graph:
            if isinstance(operator, LoopInput):
                raise ValidationError(
                    "LoopInput may only appear inside a Repeat body plan"
                )
            if isinstance(operator, Repeat):
                _validate_repeat_body(operator)

    @property
    def sinks(self) -> tuple[LogicalOperator, ...]:
        """The result operators of the plan."""
        return self.graph.sinks

    def collect_sinks(self) -> tuple[CollectSink, ...]:
        """All :class:`CollectSink` operators (results returned to callers)."""
        return tuple(op for op in self.graph if isinstance(op, CollectSink))

    def explain(self) -> str:
        """Human-readable rendering of the plan DAG."""
        return self.graph.explain()

    def __len__(self) -> int:
        return len(self.graph)


def _validate_repeat_body(repeat: Repeat) -> None:
    body_graph = repeat.body.graph
    body_graph.validate()
    loop_inputs = [op for op in body_graph if isinstance(op, LoopInput)]
    if repeat.body_input not in loop_inputs:
        raise ValidationError("Repeat.body_input must be a LoopInput in the body")
    if len(loop_inputs) != 1:
        raise ValidationError(
            f"Repeat body must contain exactly one LoopInput, found {len(loop_inputs)}"
        )
    # Nested loops are executed recursively, so bodies may contain Repeats;
    # their own bodies get validated through the same path.
    for operator in body_graph:
        if isinstance(operator, Repeat):
            _validate_repeat_body(operator)
