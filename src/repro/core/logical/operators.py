"""Logical operators — the application-layer vocabulary.

A *logical operator* is "an abstract UDF that acts as an application-
specific unit of data processing" (paper §3.1).  This module provides:

* the :class:`LogicalOperator` base class with the ``apply_op`` hook the
  paper describes (applications extend it — see ``repro.apps``), and
* a library of generic logical operators (Map, Filter, GroupBy, Join, …)
  that back the fluent end-user API and that application-specific
  operators translate into.

Logical operators carry *cost hints* — the paper's "context information"
that developers attach to mappings so the optimizer can pick the right
physical variant and platform at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.dag import OperatorNode
from repro.core.types import KeyUdf, Predicate, Udf
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.logical.plan import LogicalPlan


@dataclass(frozen=True)
class CostHints:
    """Optimizer context attached to a logical operator.

    Attributes
    ----------
    selectivity:
        Fraction of input quanta surviving the operator (filters).
    output_factor:
        Average number of output quanta per input quantum (flat-maps).
    udf_load:
        Relative CPU weight of the UDF versus a trivial field access
        (1.0 = trivial; a distance computation over a 100-d vector might
        be 50).
    key_fanout:
        Expected number of distinct keys as a fraction of the input size
        (group-bys and joins); ``None`` lets the estimator use defaults.
    """

    selectivity: float | None = None
    output_factor: float | None = None
    udf_load: float = 1.0
    key_fanout: float | None = None

    def __post_init__(self) -> None:
        if self.selectivity is not None and not 0.0 <= self.selectivity <= 1.0:
            raise ValidationError(
                f"selectivity must be within [0, 1], got {self.selectivity}"
            )
        if self.output_factor is not None and self.output_factor < 0:
            raise ValidationError(
                f"output_factor must be non-negative, got {self.output_factor}"
            )
        if self.udf_load <= 0:
            raise ValidationError(f"udf_load must be positive, got {self.udf_load}")


DEFAULT_HINTS = CostHints()


class LogicalOperator(OperatorNode):
    """Base class for all logical operators.

    Mirrors the paper's abstract ``LogicalOperator`` with its ``applyOp``
    method: subclasses that process one quantum at a time implement
    :meth:`apply_op`; structural operators (group-bys, joins) instead are
    recognised by the translation layer via their type.
    """

    def __init__(self, name: str | None = None, hints: CostHints | None = None):
        super().__init__(name)
        self.hints = hints or DEFAULT_HINTS

    def apply_op(self, quantum: Any) -> Any:
        """Apply this operator to a single data quantum.

        Only meaningful for per-quantum operators; structural operators
        raise to make misuse obvious.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not a per-quantum operator"
        )


# ----------------------------------------------------------------------
# sources
# ----------------------------------------------------------------------
class CollectionSource(LogicalOperator):
    """Source over an in-memory Python collection."""

    num_inputs = 0

    def __init__(self, data: Sequence[Any], name: str | None = None):
        super().__init__(name or "CollectionSource")
        self.data = list(data)

    def describe(self) -> str:
        return f"{self.name}(n={len(self.data)})"


class TextFileSource(LogicalOperator):
    """Source yielding the lines of a text file (newline stripped)."""

    num_inputs = 0

    def __init__(self, path: str, name: str | None = None):
        super().__init__(name or "TextFileSource")
        self.path = path

    def describe(self) -> str:
        return f"{self.name}({self.path!r})"


class TableSource(LogicalOperator):
    """Source reading a dataset registered in the storage catalog.

    The actual resolution happens at execution time through the storage
    layer, which lets the optimizer weigh *where the data already lives*
    (the paper's data-movement concern).
    """

    num_inputs = 0

    def __init__(self, dataset: str, name: str | None = None):
        super().__init__(name or "TableSource")
        self.dataset = dataset

    def describe(self) -> str:
        return f"{self.name}({self.dataset!r})"


class LoopInput(LogicalOperator):
    """Placeholder source bound to the loop state inside a ``Repeat`` body."""

    num_inputs = 0

    def __init__(self, name: str | None = None):
        super().__init__(name or "LoopInput")


# ----------------------------------------------------------------------
# per-quantum operators
# ----------------------------------------------------------------------
class Map(LogicalOperator):
    """Apply a UDF to every quantum (1 in, 1 out)."""

    def __init__(self, udf: Udf, name: str | None = None, hints: CostHints | None = None):
        super().__init__(name or "Map", hints)
        self.udf = udf

    def apply_op(self, quantum: Any) -> Any:
        return self.udf(quantum)


class FlatMap(LogicalOperator):
    """Apply a UDF yielding zero or more quanta per input quantum."""

    def __init__(self, udf: Callable[[Any], Any], name: str | None = None,
                 hints: CostHints | None = None):
        super().__init__(name or "FlatMap", hints)
        self.udf = udf

    def apply_op(self, quantum: Any) -> Any:
        return self.udf(quantum)


class Filter(LogicalOperator):
    """Keep only quanta satisfying a predicate."""

    def __init__(self, predicate: Predicate, name: str | None = None,
                 hints: CostHints | None = None):
        super().__init__(name or "Filter", hints)
        self.predicate = predicate

    def apply_op(self, quantum: Any) -> Any:
        return self.predicate(quantum)


class ZipWithId(LogicalOperator):
    """Attach a unique, dense id to each quantum, yielding ``(id, quantum)``.

    Data-cleaning rules need stable tuple identifiers to report violations;
    this mirrors Rheem's homonymous operator.
    """

    def __init__(self, name: str | None = None):
        super().__init__(name or "ZipWithId")


# ----------------------------------------------------------------------
# structural operators
# ----------------------------------------------------------------------
class GroupBy(LogicalOperator):
    """Group quanta by a key UDF, yielding ``(key, [quanta])`` pairs."""

    def __init__(self, key: KeyUdf, name: str | None = None,
                 hints: CostHints | None = None):
        super().__init__(name or "GroupBy", hints)
        self.key = key


class ReduceBy(LogicalOperator):
    """Combine quanta sharing a key with a binary reducer.

    Yields one combined quantum per distinct key.  The reducer must
    preserve its operands' key (the usual ``reduceByKey`` contract).
    Unlike :class:`GroupBy` the reducer is applied incrementally, which
    platforms exploit (e.g. map-side combining on the simulated Spark
    platform).
    """

    def __init__(self, key: KeyUdf, reducer: Callable[[Any, Any], Any],
                 name: str | None = None, hints: CostHints | None = None):
        super().__init__(name or "ReduceBy", hints)
        self.key = key
        self.reducer = reducer


class GlobalReduce(LogicalOperator):
    """Reduce the whole dataset to a single quantum with a binary reducer."""

    def __init__(self, reducer: Callable[[Any, Any], Any],
                 name: str | None = None, hints: CostHints | None = None):
        super().__init__(name or "GlobalReduce", hints)
        self.reducer = reducer


class Join(LogicalOperator):
    """Equi-join two inputs on key UDFs, yielding ``(left, right)`` pairs."""

    num_inputs = 2

    def __init__(self, left_key: KeyUdf, right_key: KeyUdf,
                 name: str | None = None, hints: CostHints | None = None):
        super().__init__(name or "Join", hints)
        self.left_key = left_key
        self.right_key = right_key


class CrossProduct(LogicalOperator):
    """Cartesian product of two inputs, yielding ``(left, right)`` pairs."""

    num_inputs = 2

    def __init__(self, name: str | None = None, hints: CostHints | None = None):
        super().__init__(name or "CrossProduct", hints)


class Union(LogicalOperator):
    """Bag union of two inputs (duplicates preserved)."""

    num_inputs = 2

    def __init__(self, name: str | None = None):
        super().__init__(name or "Union")


class Sort(LogicalOperator):
    """Totally order the dataset by a key UDF."""

    def __init__(self, key: KeyUdf, reverse: bool = False,
                 name: str | None = None, hints: CostHints | None = None):
        super().__init__(name or "Sort", hints)
        self.key = key
        self.reverse = reverse


class Distinct(LogicalOperator):
    """Remove duplicate quanta (quanta must be hashable)."""

    def __init__(self, name: str | None = None, hints: CostHints | None = None):
        super().__init__(name or "Distinct", hints)


class Sample(LogicalOperator):
    """Uniform random sample of ``size`` quanta (without replacement)."""

    def __init__(self, size: int, seed: int = 0, name: str | None = None):
        super().__init__(name or "Sample")
        if size < 0:
            raise ValidationError(f"sample size must be non-negative, got {size}")
        self.size = size
        self.seed = seed

    def describe(self) -> str:
        return f"{self.name}(size={self.size})"


class Count(LogicalOperator):
    """Count quanta, yielding a single integer."""

    def __init__(self, name: str | None = None):
        super().__init__(name or "Count")


class Limit(LogicalOperator):
    """Keep only the first ``n`` quanta (in upstream order)."""

    def __init__(self, n: int, name: str | None = None):
        super().__init__(name or "Limit")
        if n < 0:
            raise ValidationError(f"limit must be non-negative, got {n}")
        self.n = n

    def describe(self) -> str:
        return f"{self.name}({self.n})"


# ----------------------------------------------------------------------
# control flow
# ----------------------------------------------------------------------
class Repeat(LogicalOperator):
    """Iterate a body sub-plan over an evolving loop state.

    This is the paper's ``Loop`` logical operator (Example 1): the input
    dataset becomes the initial loop state, the body plan transforms the
    state once per iteration (reading it through its :class:`LoopInput`
    operator), and iteration stops after ``times`` rounds or as soon as
    ``condition`` returns True over the current state.

    The body may contain its own sources (e.g. the training data); the
    executor caches their results across iterations, mirroring how an
    iterative Spark driver caches its input RDD.
    """

    def __init__(
        self,
        body: "LogicalPlan",
        body_input: LoopInput,
        body_output: LogicalOperator,
        times: int | None = None,
        condition: Callable[[list[Any]], bool] | None = None,
        max_iterations: int = 1000,
        name: str | None = None,
    ):
        super().__init__(name or "Repeat")
        if times is None and condition is None:
            raise ValidationError("Repeat needs `times` and/or `condition`")
        if times is not None and times < 0:
            raise ValidationError(f"times must be non-negative, got {times}")
        if body_input not in body.graph:
            raise ValidationError("body_input operator is not part of the body plan")
        if body_output not in body.graph:
            raise ValidationError("body_output operator is not part of the body plan")
        self.body = body
        self.body_input = body_input
        self.body_output = body_output
        self.times = times
        self.condition = condition
        self.max_iterations = max_iterations

    @property
    def iteration_bound(self) -> int:
        """Upper bound on iterations (used by the cost model)."""
        if self.times is not None:
            return self.times
        return self.max_iterations

    def describe(self) -> str:
        bound = self.times if self.times is not None else f"<= {self.max_iterations}"
        return f"{self.name}(iterations={bound}, body_ops={len(self.body.graph)})"


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class CollectSink(LogicalOperator):
    """Materialise the result as an in-memory list returned to the caller."""

    def __init__(self, name: str | None = None):
        super().__init__(name or "CollectSink")
