"""Cross-run cardinality calibration: learning from the misestimate feed.

The paper's §4.2 monitoring loop records every observed/estimated
cardinality discrepancy; the RHEEM line of work (progressive
optimization, RHEEMix) closes the loop by feeding those discrepancies
*back into the estimator*.  This module is that loop's memory:

* :class:`CalibrationStore` — per-operator-kind/per-platform priors over
  the misestimate feed (sample count, log-mean of the raw
  observed/estimated ratio, p50/p90 of the folded residual factor),
  backed by a shared
  :class:`~repro.core.observability.registry.MetricsRegistry` so priors
  are exportable/scrapable like any other series, with JSON
  snapshot/restore for persistence across processes;
* :class:`CalibratedCardinalityEstimator` (in
  :mod:`repro.core.optimizer.cardinality`) multiplies raw estimates by
  the store's learned correction factors;
* :class:`~repro.core.progressive.ProgressiveExecutor` consumes the
  *distribution* of the current run's factors (p90 drift band) instead
  of a fixed per-boundary threshold.

**Determinism contract.**  Store updates are fed from
``ExecutionMetrics.calibration_observations``, which is populated in
plan order (journal-replay order under the concurrent scheduler), so the
store state after a run is byte-identical at any ``parallelism``.

**Kill switch.**  ``REPRO_NO_CALIBRATION=1`` (read per call, mirroring
``REPRO_NO_KERNELS``) disables correction application, store ingestion
and the distribution-drift replan trigger — restoring the pre-calibration
behaviour exactly: same plans, same ledger sequences, same outputs.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.metrics import MISESTIMATE_BUCKETS, CalibrationObservation
from repro.core.observability.registry import (
    HistogramSeries,
    MetricsRegistry,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import ExecutionMetrics

#: environment kill switch: truthy value disables all calibration paths
KILL_SWITCH = "REPRO_NO_CALIBRATION"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def calibration_enabled() -> bool:
    """Whether calibration feedback is active (the default).

    Read per call (not cached) so tests and operators can flip the
    switch mid-process, mirroring the ``REPRO_NO_KERNELS`` pattern.
    """
    return os.environ.get(KILL_SWITCH, "").strip().lower() not in _TRUTHY


@dataclass(frozen=True)
class CalibrationPrior:
    """One (operator kind, platform) prior derived from the store."""

    kind: str
    platform: str
    count: int
    #: mean of ln(observed / raw estimate) — the signed bias
    log_mean: float
    #: p50/p90 of the folded residual factor (always >= 1)
    p50: float
    p90: float

    @property
    def geo_mean_ratio(self) -> float:
        """Geometric mean of observed/raw-estimate (the correction)."""
        return math.exp(self.log_mean)


class CalibrationStore:
    """Per-kind/per-platform misestimate priors, registry-backed.

    Three instruments in the backing registry hold the state (all keyed
    by ``kind`` + ``platform`` labels):

    * counter ``calibration_samples`` — sample count;
    * gauge ``calibration_log_ratio_sum`` — sum of ln(observed/raw
      estimate), signed (a gauge because under-estimates subtract);
    * histogram ``calibration_factor`` — folded *residual* factors
      (post-correction), bucketed like ``misestimate_factor``, for
      p50/p90 priors.

    Pass a shared registry (e.g. ``tracer.registry``) to co-export the
    priors with run telemetry, or let the store own a private one.
    """

    #: corrections are not applied below this many samples.  1 means a
    #: single observed run is enough — the cold-start fallback is the
    #: *empty* store (correction 1.0 everywhere), which is what makes
    #: the two-run demo work: run 1 observes, run 2 corrects.  Raise it
    #: to demand more evidence before estimates move.
    DEFAULT_MIN_SAMPLES = 1
    #: correction factors are clamped to [1/cap, cap]
    DEFAULT_MAX_CORRECTION = 1e6

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        max_correction: float = DEFAULT_MAX_CORRECTION,
    ):
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if max_correction < 1.0:
            raise ValueError(
                f"max_correction must be >= 1, got {max_correction}"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.min_samples = min_samples
        self.max_correction = max_correction
        #: monotonic prior-state version; see :attr:`epoch`
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Monotonic counter bumped whenever the priors change.

        Consumers that memoize optimizer output (the serving-layer plan
        cache) key their entries on this value: any successful
        :meth:`observe`, a :meth:`restore` or a :meth:`reset` invalidates
        every plan enumerated under the previous priors, so a stale
        cached plan can never be served after the estimator moved.
        """
        return self._epoch

    # ------------------------------------------------------------------
    # instrument accessors
    # ------------------------------------------------------------------
    @property
    def _samples(self):
        return self.registry.counter(
            "calibration_samples",
            "estimate/observation pairs folded into calibration priors",
        )

    @property
    def _log_sum(self):
        return self.registry.gauge(
            "calibration_log_ratio_sum",
            "sum of ln(observed/raw estimate) per kind/platform",
        )

    @property
    def _factors(self):
        return self.registry.histogram(
            "calibration_factor",
            "folded residual misestimate factor per kind/platform",
            buckets=MISESTIMATE_BUCKETS,
        )

    @property
    def _priors_applied(self):
        return self.registry.counter(
            "priors_applied",
            "estimates multiplied by a learned calibration correction",
        )

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def observe(
        self,
        kind: str,
        platform: str,
        estimated: float,
        observed: float,
        correction: float = 1.0,
    ) -> bool:
        """Fold one estimate/observation pair into the priors.

        ``estimated`` is the (possibly already-corrected) plan-time
        estimate; ``correction`` the factor the calibrated estimator
        applied to it, which is divided back out so the stored ratio
        describes the *raw* estimator's bias.  Pairs with a zero on
        either side carry no finite ratio and are skipped (returns
        False) — the legacy per-boundary replan path still sees them.
        """
        if estimated <= 0 or observed <= 0 or correction <= 0:
            return False
        raw_estimate = estimated / correction
        ratio = observed / raw_estimate
        if not math.isfinite(ratio) or ratio <= 0:
            return False
        residual = observed / estimated
        folded = residual if residual >= 1.0 else 1.0 / residual
        self._samples.inc(kind=kind, platform=platform)
        self._log_sum.inc(math.log(ratio), kind=kind, platform=platform)
        self._factors.observe(folded, kind=kind, platform=platform)
        self._epoch += 1
        return True

    def ingest(self, metrics: "ExecutionMetrics") -> int:
        """Fold a finished run's observation feed into the priors.

        Returns the number of pairs ingested.  A no-op (0) when the
        ``REPRO_NO_CALIBRATION`` kill switch is set.
        """
        if not calibration_enabled():
            return 0
        return self.ingest_observations(metrics.calibration_observations)

    def ingest_observations(
        self, observations: Iterable[CalibrationObservation]
    ) -> int:
        count = 0
        for obs in observations:
            if self.observe(
                obs.kind, obs.platform, obs.estimated, obs.observed,
                obs.correction,
            ):
                count += 1
        return count

    # ------------------------------------------------------------------
    # corrections
    # ------------------------------------------------------------------
    def correction(self, kind: str, platform: str | None = None) -> float:
        """Learned correction factor for ``kind`` (pooled over platforms
        unless one is named).

        Cold start: below ``min_samples`` samples the correction is 1.0
        (raw estimates pass through unchanged — this is what makes a
        cold store byte-identical to calibration-off).  The factor is
        the geometric mean of observed/raw-estimate, clamped to
        ``[1/max_correction, max_correction]``.  Returns 1.0 whenever
        the kill switch is set.
        """
        if not calibration_enabled():
            return 1.0
        count = 0.0
        log_sum = 0.0
        for key, value in self._samples.series.items():
            labels = dict(key)
            if labels.get("kind") != kind:
                continue
            if platform is not None and labels.get("platform") != platform:
                continue
            count += value
            log_sum += self._log_sum.series.get(key, 0.0)
        if count < self.min_samples:
            return 1.0
        factor = math.exp(log_sum / count)
        return min(max(factor, 1.0 / self.max_correction), self.max_correction)

    def note_prior_applied(self, kind: str) -> None:
        """Count one estimate that a learned correction actually moved."""
        self._priors_applied.inc(kind=kind)

    @property
    def priors_applied(self) -> int:
        """How many estimates learned corrections have moved so far."""
        return int(self._priors_applied.total())

    # ------------------------------------------------------------------
    # priors
    # ------------------------------------------------------------------
    def priors(self) -> list[CalibrationPrior]:
        """Every (kind, platform) prior, sorted for stable rendering."""
        out: list[CalibrationPrior] = []
        for key, count in sorted(self._samples.series.items()):
            labels = dict(key)
            kind = labels.get("kind", "?")
            platform = labels.get("platform", "?")
            log_sum = self._log_sum.series.get(key, 0.0)
            series = self._factors.series.get(key)
            p50 = series.quantile(0.5) if series else 0.0
            p90 = series.quantile(0.9) if series else 0.0
            out.append(
                CalibrationPrior(
                    kind=kind,
                    platform=platform,
                    count=int(count),
                    log_mean=(log_sum / count) if count else 0.0,
                    p50=p50,
                    p90=p90,
                )
            )
        return out

    def sample_count(self) -> int:
        """Total samples across every (kind, platform) series."""
        return int(self._samples.total())

    def p90(self, kind: str, platform: str) -> float:
        """p90 residual factor prior for one (kind, platform)."""
        return self._factors.quantile(0.9, kind=kind, platform=platform)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    SNAPSHOT_VERSION = 1

    def snapshot(self) -> dict:
        """A JSON-serialisable dump that :meth:`restore` round-trips
        exactly (counts, log sums, bucket counts, vmin/vmax)."""
        priors = []
        for key, count in sorted(self._samples.series.items()):
            labels = dict(key)
            series = self._factors.series.get(key)
            entry = {
                "kind": labels.get("kind", "?"),
                "platform": labels.get("platform", "?"),
                "count": count,
                "log_sum": self._log_sum.series.get(key, 0.0),
            }
            if series is not None:
                entry["factor_histogram"] = {
                    "bounds": list(series.bounds),
                    "counts": list(series.counts),
                    "total": series.total,
                    "n": series.n,
                    "vmin": series.vmin,
                    "vmax": series.vmax,
                }
            priors.append(entry)
        return {
            "version": self.SNAPSHOT_VERSION,
            "min_samples": self.min_samples,
            "max_correction": self.max_correction,
            "priors": priors,
        }

    def restore(self, data: dict) -> None:
        """Load a :meth:`snapshot` dump *into* this store (additive:
        restoring onto a non-empty store merges, like ``merge_from``)."""
        version = data.get("version")
        if version != self.SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported calibration snapshot version {version!r}"
            )
        self._epoch += 1
        for entry in data.get("priors", []):
            kind = entry["kind"]
            platform = entry["platform"]
            count = float(entry.get("count", 0))
            if count:
                self._samples.inc(count, kind=kind, platform=platform)
                self._log_sum.inc(
                    float(entry.get("log_sum", 0.0)),
                    kind=kind, platform=platform,
                )
            hist = entry.get("factor_histogram")
            if hist:
                bounds = tuple(float(b) for b in hist["bounds"])
                incoming = HistogramSeries(
                    bounds=bounds,
                    counts=[int(c) for c in hist["counts"]],
                    total=float(hist["total"]),
                    n=int(hist["n"]),
                    vmin=float(hist.get("vmin", math.inf)),
                    vmax=float(hist.get("vmax", -math.inf)),
                )
                instrument = self._factors
                key = tuple(sorted(
                    (k, str(v))
                    for k, v in {"kind": kind, "platform": platform}.items()
                ))
                target = instrument.series.get(key)
                if target is None:
                    instrument.series[key] = incoming
                else:
                    if target.bounds != incoming.bounds:
                        raise ValueError(
                            "calibration snapshot histogram bounds do not "
                            f"match for {kind}@{platform}"
                        )
                    for i, c in enumerate(incoming.counts):
                        target.counts[i] += c
                    target.total += incoming.total
                    target.n += incoming.n
                    target.vmin = min(target.vmin, incoming.vmin)
                    target.vmax = max(target.vmax, incoming.vmax)

    def save_json(self, path: str) -> None:
        """Write the snapshot as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load_json(
        cls,
        path: str,
        registry: MetricsRegistry | None = None,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        max_correction: float = DEFAULT_MAX_CORRECTION,
    ) -> "CalibrationStore":
        """Build a store from a JSON snapshot file."""
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        store = cls(
            registry=registry,
            min_samples=int(data.get("min_samples", min_samples)),
            max_correction=float(data.get("max_correction", max_correction)),
        )
        store.restore(data)
        return store

    def reset(self) -> None:
        """Drop every prior (counts, log sums, factor histograms)."""
        self._samples.series.clear()
        self._log_sum.series.clear()
        self._factors.series.clear()
        self._priors_applied.series.clear()
        self._epoch += 1

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def report(self) -> str:
        """Human-readable prior table for ``repro calibration show`` and
        the ``repro explain`` calibration section."""
        priors = self.priors()
        if not priors:
            return "calibration store: empty (no priors recorded)"
        lines = [
            f"calibration store: {self.sample_count()} samples across "
            f"{len(priors)} (kind, platform) series "
            f"(min_samples={self.min_samples}, "
            f"corrections applied={self.priors_applied})"
        ]
        header = (
            f"  {'kind':<18} {'platform':<10} {'n':>5} "
            f"{'correction':>11} {'p50':>8} {'p90':>8}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for prior in priors:
            correction = self.correction(prior.kind, prior.platform)
            lines.append(
                f"  {prior.kind:<18} {prior.platform:<10} {prior.count:>5} "
                f"{correction:>10.3g}x {prior.p50:>7.2f}x {prior.p90:>7.2f}x"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CalibrationStore samples={self.sample_count()} "
            f"series={len(self._samples.series)}>"
        )
