"""Abstract operator work units.

Platforms differ in *speed* (per-tuple cost, parallelism, fixed
overheads), but the asymptotic work an algorithm performs — linear scans,
``n log n`` sorts, quadratic nested loops — is a property of the physical
operator itself.  This module estimates that work in abstract *units*
(roughly: elementary tuple operations).  Each platform cost model converts
units to virtual milliseconds with its own speed and overhead parameters.

Applications that register new physical operators (the cleaning
application's ``IEJoin``) register a unit function here so every platform
prices the operator consistently.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core.optimizer.cost import OperatorCostInput

UnitFunction = Callable[[OperatorCostInput], float]

_UNIT_FUNCTIONS: dict[str, UnitFunction] = {}


def register_work_units(kind: str, fn: UnitFunction) -> None:
    """Register the work-unit estimator for physical-operator ``kind``."""
    _UNIT_FUNCTIONS[kind] = fn


def work_units(cost_input: OperatorCostInput) -> float:
    """Abstract work units for one operator run.

    Unknown kinds fall back to a linear scan of inputs plus output
    construction — a conservative default for application-defined
    operators that have not registered a better estimate.
    """
    fn = _UNIT_FUNCTIONS.get(cost_input.kind)
    if fn is not None:
        return fn(cost_input)
    return sum(cost_input.input_cards) + cost_input.output_card


def _log2(n: float) -> float:
    return math.log2(max(n, 2.0))


def _scan(ci: OperatorCostInput) -> float:
    return ci.input_cards[0] if ci.input_cards else ci.output_card


def _per_quantum_udf(ci: OperatorCostInput) -> float:
    n = ci.input_cards[0] if ci.input_cards else 0.0
    return n * ci.udf_load + 0.1 * ci.output_card


def _hash_grouping(ci: OperatorCostInput) -> float:
    n = ci.input_cards[0] if ci.input_cards else 0.0
    return 1.2 * n + 0.1 * ci.output_card


def _sort_grouping(ci: OperatorCostInput) -> float:
    n = ci.input_cards[0] if ci.input_cards else 0.0
    return 0.25 * n * _log2(n) + 0.1 * ci.output_card


def _reduce_by(ci: OperatorCostInput) -> float:
    n = ci.input_cards[0] if ci.input_cards else 0.0
    return n * (1.0 + ci.udf_load)


def _global_reduce(ci: OperatorCostInput) -> float:
    n = ci.input_cards[0] if ci.input_cards else 0.0
    return n * ci.udf_load


def _hash_join(ci: OperatorCostInput) -> float:
    left, right = ci.input_cards
    return left + right + ci.output_card


def _sort_merge_join(ci: OperatorCostInput) -> float:
    left, right = ci.input_cards
    return 0.25 * (left * _log2(left) + right * _log2(right)) + ci.output_card


def _nested_loop_join(ci: OperatorCostInput) -> float:
    left, right = ci.input_cards
    return left * right * ci.udf_load + ci.output_card


def _cross(ci: OperatorCostInput) -> float:
    left, right = ci.input_cards
    return max(left * right, ci.output_card)


def _union(ci: OperatorCostInput) -> float:
    return 0.05 * sum(ci.input_cards)


def _sort(ci: OperatorCostInput) -> float:
    n = ci.input_cards[0] if ci.input_cards else 0.0
    return 0.25 * n * _log2(n)


def _hash_distinct(ci: OperatorCostInput) -> float:
    return ci.input_cards[0] if ci.input_cards else 0.0


def _sample(ci: OperatorCostInput) -> float:
    n = ci.input_cards[0] if ci.input_cards else 0.0
    return 0.2 * n


def _count(ci: OperatorCostInput) -> float:
    n = ci.input_cards[0] if ci.input_cards else 0.0
    return 0.05 * n


def _sink(ci: OperatorCostInput) -> float:
    n = ci.input_cards[0] if ci.input_cards else 0.0
    return 0.1 * n


register_work_units("source.collection", lambda ci: ci.output_card)
register_work_units("source.textfile", lambda ci: 1.5 * ci.output_card)
register_work_units("source.table", lambda ci: ci.output_card)
register_work_units("source.loopinput", lambda ci: 0.1 * ci.output_card)
register_work_units("map", _per_quantum_udf)
register_work_units("flatmap", _per_quantum_udf)
register_work_units("filter", _per_quantum_udf)
register_work_units("zipwithid", _scan)
register_work_units("groupby.hash", _hash_grouping)
register_work_units("groupby.sort", _sort_grouping)
register_work_units("reduceby.hash", _reduce_by)
register_work_units("reduce.global", _global_reduce)
register_work_units("join.hash", _hash_join)
register_work_units("join.sortmerge", _sort_merge_join)


def _broadcast_join(ci: OperatorCostInput) -> float:
    left, right = ci.input_cards
    # the right side is built once per task; charged via the platform's
    # broadcast handling — here only the probe+build work
    return left + 2.0 * right + ci.output_card


register_work_units("join.broadcast", _broadcast_join)
register_work_units("join.nestedloop", _nested_loop_join)
register_work_units("cross", _cross)
register_work_units("union", _union)
register_work_units("sort", _sort)
register_work_units("distinct.hash", _hash_distinct)
register_work_units("distinct.sort", _sort_grouping)
register_work_units("sample", _sample)
register_work_units("count", _count)
register_work_units("limit", lambda ci: 0.1 * ci.output_card)
register_work_units("sink.collect", _sink)
