"""Pluggable cost models.

Two model families, both expressed in *virtual milliseconds*:

* :class:`PlatformCostModel` — how long a platform takes to run one
  physical operator over given cardinalities, plus the platform's fixed
  overheads (start-up, per-operator scheduling, loop synchronisation).
  Each simulated platform ships its own calibrated subclass.
* :class:`MovementCostModel` — the paper's *inter-platform cost model*
  (§4.2, third aspect): the cost of moving data quanta between two
  platforms (serialise, transfer, deserialise).

The same models serve double duty, exactly once each way:

* the **optimizer** evaluates them with *estimated* cardinalities to pick
  variants, platforms and atom cuts;
* the **executor** evaluates them with *observed* cardinalities to charge
  virtual time, which is what benchmarks report.

This mirrors how the paper separates plan-time estimation from the
monitoring the Executor performs, and it is the documented substitution
for the cluster hardware we do not have (see DESIGN.md §2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True)
class OperatorCostInput:
    """Everything a platform model may use to price one operator run."""

    kind: str
    input_cards: tuple[float, ...]
    output_card: float
    udf_load: float = 1.0


class PlatformCostModel(ABC):
    """Virtual-time model of one processing platform."""

    #: name of the platform this model prices (set by subclasses).
    platform_name: str = "abstract"

    @abstractmethod
    def startup_ms(self) -> float:
        """One-off cost of involving this platform in an execution.

        For the simulated Spark platform this is the job/application
        start-up (driver + executor scheduling); for the in-process
        platform it is ~0.  Charged once per execution per platform.
        """

    @abstractmethod
    def operator_ms(self, cost_input: OperatorCostInput) -> float:
        """Data-dependent cost of one operator run, including any
        per-operator scheduling overhead and shuffle the platform incurs
        for that operator kind."""

    def udf_work_ms(self, total_units: float, peak_task_units: float) -> float:
        """Virtual time for work UDFs reported at run time.

        ``total_units`` is the work summed over all tasks of the operator
        run; ``peak_task_units`` the largest single task's share (equal to
        the total on single-task platforms).  Parallel platforms are
        bounded below by the straggler task, which is how skew — e.g. one
        task enumerating all candidate pairs — shows up in virtual time.
        """
        return 0.001 * total_units

    def loop_iteration_ms(self) -> float:
        """Per-iteration driver/synchronisation overhead for loops.

        Iterative algorithms require a control decision per iteration; on
        a distributed platform that is a driver round-trip.  Defaults to
        zero for in-process engines.
        """
        return 0.0

    def cached_read_ms(self, card: float) -> float:
        """Cost of re-reading a dataset this platform has already cached
        in memory (used for loop-invariant sources)."""
        return 0.0001 * card

    def ingest_ms(self, card: float) -> float:
        """Cost of converting an in-memory collection into the platform's
        native representation (charged at atom boundaries)."""
        return 0.0005 * card

    def egest_ms(self, card: float) -> float:
        """Cost of materialising a native dataset back into an in-memory
        collection (charged at atom boundaries)."""
        return 0.0005 * card

    def columnar_ingest_ms(self, card: float) -> float:
        """Cost of packing a row collection into columnar array buffers.

        Charged when the producer side of a channel opts into the
        columnar layout — explicit work, priced like any movement.
        Packing type-checks and copies every value once.
        """
        return 0.0004 * card

    def columnar_egest_ms(self, card: float) -> float:
        """Cost of unpacking columnar buffers back into rows.

        Charged when a consumer pulls a columnar channel; cheaper than
        ingest (a single zip pass, no type checks).
        """
        return 0.0002 * card


class KernelCostModel:
    """Wall-clock data-path model fed by *measured* kernel rates.

    Everything else in this module prices **virtual** time — the
    simulated-cluster currency benchmarks report.  This model prices
    **wall** time on this host: per-row milliseconds for each data-path
    stage in row mode versus columnar-native mode, measured by
    :meth:`repro.core.optimizer.profiler.CostProfiler.profile_datapath`
    (never hard-coded).  It is how the optimizer and ``repro explain``
    *predict* the win of eliding a columnar boundary instead of merely
    reporting which kernel engaged after the fact.

    ``rates`` maps ``(stage, mode)`` to measured ms/row, where stage is
    one of ``project`` / ``filter`` / ``reduceby`` (consumer compute)
    or ``boundary.unpack`` / ``boundary.pack`` (the egest row
    materialisation and the ingest pack, both row-mode only).
    """

    #: consumer operator kind -> profiled stage that dominates it
    STAGE_OF_KIND = {
        "map": "project",
        "fused.narrow": "project",
        "filter": "filter",
        "reduceby.hash": "reduceby",
        "groupby.hash": "reduceby",
    }

    def __init__(self, rates: dict[tuple[str, str], float]):
        self.rates = dict(rates)

    def rate(self, stage: str, mode: str) -> float:
        """Measured ms per row for ``stage`` in ``mode`` (0.0 unknown)."""
        return self.rates.get((stage, mode), 0.0)

    def stage_ms(self, stage: str, card: float, mode: str) -> float:
        """Predicted wall ms for one stage over ``card`` rows."""
        return self.rate(stage, mode) * card

    def unpack_ms(self, card: float) -> float:
        """Predicted wall ms of the egest row materialisation."""
        return self.stage_ms("boundary.unpack", card, "row")

    def pack_ms(self, card: float) -> float:
        """Predicted wall ms of packing rows into column buffers."""
        return self.stage_ms("boundary.pack", card, "row")

    def boundary_ms(self, card: float, elided: bool) -> float:
        """Predicted wall ms of one consuming hop's unpack (0 elided)."""
        return 0.0 if elided else self.unpack_ms(card)

    def predict_boundary(
        self, consumer_kind: str, card: float
    ) -> tuple[float, float] | None:
        """``(row_ms, columnar_ms)`` for one boundary + its consumer.

        Row mode pays the unpack then the row-mode kernel; columnar
        mode elides the unpack and runs the columnar kernel.  ``None``
        when the consumer kind has no profiled stage.
        """
        stage = self.STAGE_OF_KIND.get(consumer_kind)
        if stage is None:
            return None
        row = self.unpack_ms(card) + self.stage_ms(stage, card, "row")
        columnar = self.stage_ms(stage, card, "columnar")
        return row, columnar


class MovementCostModel:
    """Inter-platform data movement cost.

    The default prices a movement as: egest from the producer platform,
    a per-transfer latency, a per-quantum wire cost, then ingest into the
    consumer platform.  Subclass to model co-located platforms (e.g. both
    reading the same HDFS) more cheaply.
    """

    def __init__(
        self,
        per_transfer_ms: float = 2.0,
        per_quantum_ms: float = 0.002,
    ):
        self.per_transfer_ms = per_transfer_ms
        self.per_quantum_ms = per_quantum_ms

    def transfer_ms(
        self,
        producer_model: PlatformCostModel,
        consumer_model: PlatformCostModel,
        card: float,
    ) -> float:
        """Virtual cost of moving ``card`` quanta between two platforms."""
        if producer_model is consumer_model:
            return 0.0
        return (
            producer_model.egest_ms(card)
            + self.per_transfer_ms
            + self.per_quantum_ms * card
            + consumer_model.ingest_ms(card)
        )


class FreeMovementCostModel(MovementCostModel):
    """A movement model that prices all transfers at zero.

    Exists for the ABL3 ablation: it reproduces the behaviour of systems
    (the paper cites Musketeer) that pick per-operator platforms without
    accounting for cross-platform data movement.
    """

    def transfer_ms(
        self,
        producer_model: PlatformCostModel,
        consumer_model: PlatformCostModel,
        card: float,
    ) -> float:
        return 0.0
