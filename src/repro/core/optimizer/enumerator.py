"""The multi-platform task optimizer (core-layer optimizer, paper §4.2).

Given a physical plan, the optimizer jointly decides, per operator,

* the **algorithmic variant** (e.g. ``HashGroupBy`` vs ``SortGroupBy``,
  Example 2), and
* the **processing platform**,

using pluggable per-platform cost models and the inter-platform movement
cost model.  It then *divides the plan into task atoms* — maximal
single-platform fragments — and emits an
:class:`~repro.core.execution.plan.ExecutionPlan`.

The assignment search is a dynamic program over the plan DAG: the cost of
running an operator under a choice is its platform cost plus, per input,
the cheapest producer choice including the movement cost of crossing
platforms.  Shared sub-plans (operators with several consumers) make the
DP an approximation — producer costs can be counted once per consumer; a
reverse-topological consistency pass resolves every operator to a single
choice.  Plans here are overwhelmingly tree-shaped, and the executor
re-prices the final plan with observed cardinalities anyway, so the
approximation only ever affects plan choice, never reported times.

Loops (``PRepeat``) are costed as ``iterations × body cost`` with
loop-invariant sources priced at cache-read rates after the first
iteration, and are always scheduled as a single-platform
:class:`~repro.core.execution.plan.LoopAtom` (platforms without the
``iterative`` profile are pruned — the data-processing-profile idea of
paper §8, challenge 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.dag import OperatorGraph
from repro.core.execution.plan import ExecutionPlan, LoopAtom, TaskAtom
from repro.core.observability.spans import KIND_OPTIMIZER, maybe_span
from repro.core.optimizer.cardinality import CardinalityEstimator
from repro.core.optimizer.cost import MovementCostModel, OperatorCostInput
from repro.core.physical.columnar import analyze_boundaries
from repro.core.physical.operators import PhysicalOperator, PRepeat
from repro.core.physical.plan import PhysicalPlan
from repro.errors import OptimizationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.observability.spans import Tracer
    from repro.platforms.base import Platform


@dataclass(frozen=True)
class Choice:
    """One (variant, platform) option for a physical operator."""

    variant: PhysicalOperator
    platform: "Platform"

    @property
    def key(self) -> tuple[int, str]:
        return (self.variant.id, self.platform.name)


class MultiPlatformOptimizer:
    """Cost-based variant/platform assignment and task-atom cutting."""

    def __init__(
        self,
        platforms: list["Platform"],
        estimator: CardinalityEstimator | None = None,
        movement: MovementCostModel | None = None,
    ):
        if not platforms:
            raise OptimizationError("at least one platform is required")
        names = [p.name for p in platforms]
        if len(set(names)) != len(names):
            raise OptimizationError(f"duplicate platform names: {names}")
        self.platforms = list(platforms)
        self.estimator = estimator or CardinalityEstimator()
        self.movement = movement or MovementCostModel()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def optimize(
        self,
        plan: PhysicalPlan,
        forced_platform: str | None = None,
        exclude_platforms: "set[str] | None" = None,
        tracer: "Tracer | None" = None,
    ) -> ExecutionPlan:
        """Produce an execution plan for ``plan``.

        ``forced_platform`` pins every operator to one platform (used for
        platform-independence demonstrations and ablations); otherwise the
        cost-based assignment runs.  ``exclude_platforms`` removes
        platforms from the roster for this call — the Executor's failover
        path uses it to re-plan a suffix off a quarantined platform.
        ``tracer`` (optional) records the full decision trace: one
        ``candidate`` span per platform subset considered with its
        estimated cost, plus the winner and the reason it won.
        """
        plan.validate()
        with maybe_span(
            tracer,
            "optimize.enumerate",
            KIND_OPTIMIZER,
            operators=len(list(plan.graph.operators)),
            forced=forced_platform,
            excluded=sorted(exclude_platforms or ()),
        ) as span:
            roster = self._roster(exclude_platforms)
            estimates = self.estimator.estimate_plan(plan)
            # Snapshot kind + applied-correction maps NOW: variant
            # substitution renumbers operators and nested loop-body
            # estimate_plan calls reset the estimator's correction map.
            estimate_kinds = {
                op.id: op.kind for op in plan.graph.operators
            }
            estimate_corrections = dict(
                getattr(self.estimator, "last_corrections", {}) or {}
            )
            if span is not None and estimate_corrections:
                span.set(
                    calibration_corrections=len(estimate_corrections),
                    calibration_kinds=sorted(
                        {
                            estimate_kinds.get(op_id, "?")
                            for op_id in estimate_corrections
                        }
                    ),
                )
            if forced_platform is not None:
                if exclude_platforms and forced_platform in exclude_platforms:
                    raise OptimizationError(
                        f"forced platform {forced_platform!r} is excluded"
                    )
                assignment = self._forced_assignment(
                    plan, forced_platform, estimates
                )
                if span is not None:
                    span.set(
                        winner=[forced_platform],
                        winner_cost=self._assignment_cost(
                            plan, assignment, estimates
                        ),
                        reason=f"platform pinned to {forced_platform!r}",
                        candidates=1,
                    )
            else:
                assignment = self._cost_based_assignment(
                    plan, estimates, roster, tracer=tracer, span=span
                )
            if span is not None:
                span.set(
                    assignment=self._describe_assignment(
                        plan, assignment, estimates
                    )
                )
        with maybe_span(tracer, "optimize.cut_atoms", KIND_OPTIMIZER) as span:
            self._apply_variants(plan, assignment)
            execution = self._cut_atoms(plan, assignment, estimates)
            execution.estimate_kinds = estimate_kinds
            execution.estimate_corrections = estimate_corrections
            # Static columnar boundary analysis: which hand-offs an
            # eligible consumer could read in place (rendered by
            # ``repro explain``, priced by the kernel-aware model).
            execution.columnar_boundaries = analyze_boundaries(execution)
            if span is not None:
                span.set(
                    atoms=len(execution.atoms),
                    platforms=[p.name for p in execution.platforms],
                )
                eligible = sum(
                    1 for b in execution.columnar_boundaries if b["eligible"]
                )
                if execution.columnar_boundaries:
                    span.set(
                        columnar_boundaries=len(execution.columnar_boundaries),
                        columnar_eligible=eligible,
                    )
        # Remember the physical plan so the Executor can rebuild the
        # remaining suffix on failover (operator objects are shared, so
        # ids — and thus channels and sinks — stay stable).
        execution.source_plan = plan
        return execution

    @staticmethod
    def _describe_assignment(
        plan: PhysicalPlan,
        assignment: dict[int, Choice],
        estimates: dict[int, float],
    ) -> list[str]:
        """Human-readable per-operator decisions (for traces/explain)."""
        lines = []
        for operator in plan.graph.topological_order():
            choice = assignment[operator.id]
            alternates = len(operator.alternates)
            extra = f" (+{alternates} variants)" if alternates else ""
            lines.append(
                f"op#{operator.id} {operator.kind}{extra} -> "
                f"{choice.variant.kind}@{choice.platform.name} "
                f"est_card={estimates[operator.id]:.0f}"
            )
        return lines

    def estimated_plan_cost(
        self,
        plan: PhysicalPlan,
        forced_platform: str | None = None,
        exclude_platforms: "set[str] | None" = None,
    ) -> float:
        """Estimated virtual cost of the best (or forced) assignment.

        Exposed for tests and ablations; includes per-platform start-up.
        """
        plan.validate()
        roster = self._roster(exclude_platforms)
        estimates = self.estimator.estimate_plan(plan)
        if forced_platform is not None:
            assignment = self._forced_assignment(plan, forced_platform, estimates)
        else:
            assignment = self._cost_based_assignment(plan, estimates, roster)
        return self._assignment_cost(plan, assignment, estimates)

    def _roster(
        self, exclude_platforms: "set[str] | None"
    ) -> "list[Platform]":
        """The platform roster minus any excluded names."""
        if not exclude_platforms:
            return list(self.platforms)
        roster = [
            p for p in self.platforms if p.name not in exclude_platforms
        ]
        if not roster:
            raise OptimizationError(
                f"every platform is excluded: {sorted(exclude_platforms)}"
            )
        return roster

    # ------------------------------------------------------------------
    # choice enumeration
    # ------------------------------------------------------------------
    def _platform_by_name(self, name: str) -> "Platform":
        for platform in self.platforms:
            if platform.name == name:
                return platform
        raise OptimizationError(
            f"unknown platform {name!r}; have {[p.name for p in self.platforms]}"
        )

    def _choices_for(
        self,
        operator: PhysicalOperator,
        platforms: "list[Platform] | None" = None,
    ) -> list[Choice]:
        variants = [operator] + list(operator.alternates)
        choices = [
            Choice(variant, platform)
            for variant in variants
            for platform in (platforms or self.platforms)
            if platform.supports(variant)
        ]
        if not choices:
            raise OptimizationError(
                f"no platform supports {operator.describe()} "
                f"(or any of its variants)"
            )
        return choices

    def _operator_cost(
        self,
        choice: Choice,
        input_cards: tuple[float, ...],
        output_card: float,
    ) -> float:
        if isinstance(choice.variant, PRepeat):
            return self._loop_cost(choice.variant, choice.platform, input_cards)
        cost_input = OperatorCostInput(
            kind=choice.variant.kind,
            input_cards=input_cards,
            output_card=output_card,
            udf_load=choice.variant.hints.udf_load,
        )
        return choice.platform.cost_model.operator_ms(cost_input)

    def _loop_cost(
        self,
        repeat: PRepeat,
        platform: "Platform",
        input_cards: tuple[float, ...],
    ) -> float:
        """Estimated cost of the whole loop on ``platform``.

        Body cost is the per-iteration sum of the cheapest supported
        variant of every body operator; loop-invariant sources pay full
        price once and cache-read price afterwards.
        """
        state_card = input_cards[0] if input_cards else 1.0
        body_estimates = self.estimator.estimate_plan(
            repeat.body, seeds={repeat.body_input.id: state_card}
        )
        iterations = max(1, repeat.iteration_bound)
        model = platform.cost_model
        per_iteration = model.loop_iteration_ms()
        first_iteration_extra = 0.0
        for operator in repeat.body.graph.topological_order():
            in_cards = tuple(
                body_estimates[p.id] for p in repeat.body.graph.inputs_of(operator)
            )
            out_card = body_estimates[operator.id]
            best = min(
                self._operator_cost(Choice(variant, platform), in_cards, out_card)
                for variant in [operator] + list(operator.alternates)
                if platform.supports(variant)
            )
            if operator.is_source and operator.kind != "source.loopinput":
                # Paid in full on the first iteration, cached afterwards.
                first_iteration_extra += best
                per_iteration += model.cached_read_ms(out_card)
            else:
                per_iteration += best
        return first_iteration_extra + iterations * per_iteration

    # ------------------------------------------------------------------
    # assignment search
    # ------------------------------------------------------------------
    def _forced_assignment(
        self,
        plan: PhysicalPlan,
        platform_name: str,
        estimates: dict[int, float],
    ) -> dict[int, Choice]:
        platform = self._platform_by_name(platform_name)
        assignment: dict[int, Choice] = {}
        for operator in plan.graph.topological_order():
            variants = [operator] + list(operator.alternates)
            supported = [v for v in variants if platform.supports(v)]
            if not supported:
                raise OptimizationError(
                    f"platform {platform_name!r} does not support "
                    f"{operator.describe()}"
                )
            in_cards = tuple(
                estimates[p.id] for p in plan.graph.inputs_of(operator)
            )
            out_card = estimates[operator.id]
            best = min(
                supported,
                key=lambda v: self._operator_cost(
                    Choice(v, platform), in_cards, out_card
                ),
            )
            assignment[operator.id] = Choice(best, platform)
        return assignment

    def _cost_based_assignment(
        self,
        plan: PhysicalPlan,
        estimates: dict[int, float],
        platforms: "list[Platform] | None" = None,
        tracer: "Tracer | None" = None,
        span=None,
    ) -> dict[int, Choice]:
        """Best assignment over all platform subsets of the roster.

        The per-operator DP cannot see per-platform start-up costs (they
        are global, not per-edge), so running it over the full roster
        makes it sprinkle expensive-to-start platforms onto single
        operators.  Instead the DP runs once per non-empty platform
        subset — exponential in the number of *platforms* (a handful),
        linear in plan size — and the exact cost (start-ups included)
        picks the winner.

        With a tracer attached, every subset becomes a ``candidate``
        span carrying its estimated cost (or infeasibility), and the
        enclosing ``span`` receives winner/cost/reason attributes — the
        enumerator's decision trace that ``repro explain`` renders.
        """
        roster = self.platforms if platforms is None else platforms
        best: dict[int, Choice] | None = None
        best_cost = float("inf")
        best_names: list[str] = []
        candidates = 0
        n = len(roster)
        for mask in range(1, 1 << n):
            subset = [roster[i] for i in range(n) if mask & (1 << i)]
            names = [p.name for p in subset]
            candidates += 1
            with maybe_span(
                tracer, "candidate", KIND_OPTIMIZER, platforms=names
            ) as cand_span:
                try:
                    candidate = self._dp_assignment(plan, estimates, subset)
                except OptimizationError as error:
                    if cand_span is not None:
                        cand_span.set(feasible=False, why=str(error))
                    continue
                cost = self._assignment_cost(plan, candidate, estimates)
                if cand_span is not None:
                    cand_span.set(feasible=True, estimated_cost_ms=cost)
                if cost < best_cost:
                    best, best_cost, best_names = candidate, cost, names
        if tracer is not None:
            tracer.registry.counter(
                "enumerator.candidates",
                "platform subsets considered by the enumerator",
            ).inc(candidates)
        if best is None:
            # Re-raise the full-roster error with its informative message.
            self._dp_assignment(plan, estimates, roster)
            raise OptimizationError("no feasible platform assignment")
        if span is not None:
            span.set(
                candidates=candidates,
                winner=best_names,
                winner_cost=best_cost,
                reason=(
                    f"cheapest estimated virtual cost ({best_cost:.2f}ms) "
                    f"across {candidates} platform-subset candidates "
                    "(start-ups included)"
                ),
            )
        return best

    def _dp_assignment(
        self,
        plan: PhysicalPlan,
        estimates: dict[int, float],
        platforms: "list[Platform]",
    ) -> dict[int, Choice]:
        graph = plan.graph
        order = graph.topological_order()
        # Forward DP: cheapest way to have each operator's output available
        # under each choice.
        dp: dict[int, dict[tuple[int, str], float]] = {}
        choice_objects: dict[int, dict[tuple[int, str], Choice]] = {}
        for operator in order:
            in_cards = tuple(estimates[p.id] for p in graph.inputs_of(operator))
            out_card = estimates[operator.id]
            dp[operator.id] = {}
            choice_objects[operator.id] = {}
            for choice in self._choices_for(operator, platforms):
                cost = self._operator_cost(choice, in_cards, out_card)
                for producer in graph.inputs_of(operator):
                    cost += min(
                        dp[producer.id][key]
                        + self.movement.transfer_ms(
                            choice_objects[producer.id][key].platform.cost_model,
                            choice.platform.cost_model,
                            estimates[producer.id],
                        )
                        for key in dp[producer.id]
                    )
                dp[operator.id][choice.key] = cost
                choice_objects[operator.id][choice.key] = choice

        # Reverse pass: commit one choice per operator, preferring choices
        # cheap for the already-committed consumers.
        assignment: dict[int, Choice] = {}
        for operator in reversed(order):
            consumers = graph.consumers_of(operator)
            best_key = None
            best_total = float("inf")
            for key, base_cost in dp[operator.id].items():
                choice = choice_objects[operator.id][key]
                total = base_cost
                for consumer in consumers:
                    committed = assignment.get(consumer.id)
                    if committed is not None:
                        total += self.movement.transfer_ms(
                            choice.platform.cost_model,
                            committed.platform.cost_model,
                            estimates[operator.id],
                        )
                if total < best_total:
                    best_total = total
                    best_key = key
            assert best_key is not None  # _choices_for guarantees options
            assignment[operator.id] = choice_objects[operator.id][best_key]
        return assignment

    def _assignment_cost(
        self,
        plan: PhysicalPlan,
        assignment: dict[int, Choice],
        estimates: dict[int, float],
    ) -> float:
        """Exact estimated cost of a committed assignment."""
        graph = plan.graph
        total = 0.0
        platforms_used: set[str] = set()
        for operator in graph.topological_order():
            choice = assignment[operator.id]
            platforms_used.add(choice.platform.name)
            in_cards = tuple(estimates[p.id] for p in graph.inputs_of(operator))
            total += self._operator_cost(choice, in_cards, estimates[operator.id])
            for producer in graph.inputs_of(operator):
                total += self.movement.transfer_ms(
                    assignment[producer.id].platform.cost_model,
                    choice.platform.cost_model,
                    estimates[producer.id],
                )
        for name in platforms_used:
            total += self._platform_by_name(name).cost_model.startup_ms()
        return total

    # ------------------------------------------------------------------
    # variant substitution
    # ------------------------------------------------------------------
    def _apply_variants(
        self, plan: PhysicalPlan, assignment: dict[int, Choice]
    ) -> dict[int, PhysicalOperator]:
        """Substitute committed variants; return old-id → new-operator map."""
        replaced: dict[int, PhysicalOperator] = {}
        for operator in list(plan.graph.operators):
            choice = assignment[operator.id]
            if choice.variant is not operator:
                plan.substitute(operator, choice.variant)
                choice.variant.alternates = []
                assignment[choice.variant.id] = choice
                del assignment[operator.id]
                replaced[operator.id] = choice.variant
        return replaced

    # ------------------------------------------------------------------
    # task-atom cutting
    # ------------------------------------------------------------------
    def _cut_atoms(
        self,
        plan: PhysicalPlan,
        assignment: dict[int, Choice],
        estimates: dict[int, float],
        extra_output_ids: frozenset[int] = frozenset(),
    ) -> ExecutionPlan:
        graph = plan.graph
        order = graph.topological_order()
        # Greedy grouping with an acyclicity guard on the atom graph.
        atom_of: dict[int, int] = {}  # operator id -> atom index
        atom_members: list[list[PhysicalOperator]] = []
        atom_platform: list["Platform"] = []
        atom_deps: list[set[int]] = []  # direct dependencies between atoms

        def reaches(source: int, target: int) -> bool:
            if source == target:
                return True
            stack = [source]
            seen = set()
            while stack:
                current = stack.pop()
                if current == target:
                    return True
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(atom_deps[current])
            return False

        for operator in order:
            platform = assignment[operator.id].platform
            producer_atoms = {
                atom_of[p.id] for p in graph.inputs_of(operator)
            }
            candidate = None
            if not isinstance(operator, PRepeat):
                same_platform = [
                    a for a in producer_atoms
                    if atom_platform[a] is platform
                    and not isinstance(atom_members[a][0], PRepeat)
                ]
                for atom_index in sorted(same_platform, reverse=True):
                    others = producer_atoms - {atom_index}
                    # Joining atom_index adds edges other -> atom_index; that
                    # closes a cycle iff some other atom already depends
                    # (transitively) on atom_index.
                    if not any(reaches(other, atom_index) for other in others):
                        candidate = atom_index
                        break
            if candidate is None:
                candidate = len(atom_members)
                atom_members.append([])
                atom_platform.append(platform)
                atom_deps.append(set())
            atom_members[candidate].append(operator)
            atom_of[operator.id] = candidate
            atom_deps[candidate].update(producer_atoms - {candidate})

        # Topological order of atoms.
        atom_order = self._topological_atoms(atom_deps)

        atoms: list[TaskAtom | LoopAtom] = []
        plan_sink_ids = {op.id for op in graph.sinks}
        for atom_index in atom_order:
            members = atom_members[atom_index]
            platform = atom_platform[atom_index]
            if len(members) == 1 and isinstance(members[0], PRepeat):
                atoms.append(self._build_loop_atom(graph, members[0], platform))
                continue
            member_ids = {op.id for op in members}
            fragment = graph.subgraph(members)
            external_inputs: dict[tuple[int, int], int] = {}
            output_ids: set[int] = set()
            for operator in members:
                for slot, producer in enumerate(graph.inputs_of(operator)):
                    if producer.id not in member_ids:
                        external_inputs[(operator.id, slot)] = producer.id
                if operator.id in plan_sink_ids or operator.id in extra_output_ids:
                    output_ids.add(operator.id)
                for consumer in graph.consumers_of(operator):
                    if consumer.id not in member_ids:
                        output_ids.add(operator.id)
            atom = TaskAtom(platform, fragment, external_inputs, output_ids)
            # Platform-layer optimization phase (paper §4.3).
            platform.optimize_atom(atom)
            atoms.append(atom)
        return ExecutionPlan(atoms, plan.collect_sinks(), dict(estimates))

    def _build_loop_atom(
        self,
        graph: OperatorGraph[PhysicalOperator],
        repeat: PRepeat,
        platform: "Platform",
    ) -> LoopAtom:
        """Schedule a loop body entirely on ``platform``.

        Re-entrant: a failover or progressive re-plan may hand the same
        ``PRepeat`` object back after an earlier round already fused its
        body output into a platform-specific pipeline; undo that so the
        body can be re-cut (and re-fused) for the new platform.
        """
        from repro.core.physical.fusion import PFusedPipeline

        if isinstance(repeat.body_output, PFusedPipeline):
            repeat.body_output = repeat.body_output.stages[-1]
        body_assignment = self._forced_body_assignment(repeat, platform)
        replaced = self._apply_variants(repeat.body, body_assignment)
        if repeat.body_input.id in replaced:
            repeat.body_input = replaced[repeat.body_input.id]
        if repeat.body_output.id in replaced:
            repeat.body_output = replaced[repeat.body_output.id]
        # The loop-output operator must be egested even when it has body-
        # internal consumers (the executor reads the state from it), and
        # must be marked *before* atom cutting so platform-layer fusion
        # keeps it addressable.
        body_plan = self._cut_atoms(
            repeat.body,
            body_assignment,
            self.estimator.estimate_plan(repeat.body),
            extra_output_ids=frozenset({repeat.body_output.id}),
        )
        # Platform-layer fusion may have folded the output operator into a
        # fused pipeline ending with it; follow the replacement.
        try:
            body_plan.atom_of(repeat.body_output.id)
        except KeyError:
            repeat.body_output = self._resolve_fused_output(
                body_plan, repeat.body_output
            )
        (state_producer,) = graph.inputs_of(repeat)
        return LoopAtom(platform, repeat, body_plan, state_producer.id)

    @staticmethod
    def _resolve_fused_output(
        body_plan: ExecutionPlan, body_output: PhysicalOperator
    ) -> PhysicalOperator:
        """Find the fused pipeline that absorbed ``body_output``."""
        from repro.core.physical.fusion import PFusedPipeline

        for atom in body_plan.atoms:
            if not isinstance(atom, TaskAtom):
                continue
            for operator in atom.fragment:
                if (
                    isinstance(operator, PFusedPipeline)
                    and operator.stages
                    and operator.stages[-1] is body_output
                ):
                    return operator
        raise OptimizationError(
            f"loop output {body_output!r} lost during platform-layer "
            "optimization"
        )

    def _forced_body_assignment(
        self, repeat: PRepeat, platform: "Platform"
    ) -> dict[int, Choice]:
        estimates = self.estimator.estimate_plan(repeat.body)
        assignment: dict[int, Choice] = {}
        for operator in repeat.body.graph.topological_order():
            variants = [operator] + list(operator.alternates)
            supported = [v for v in variants if platform.supports(v)]
            if not supported:
                raise OptimizationError(
                    f"loop body operator {operator.describe()} unsupported "
                    f"on {platform.name!r}"
                )
            in_cards = tuple(
                estimates[p.id] for p in repeat.body.graph.inputs_of(operator)
            )
            best = min(
                supported,
                key=lambda v: self._operator_cost(
                    Choice(v, platform), in_cards, estimates[operator.id]
                ),
            )
            assignment[operator.id] = Choice(best, platform)
        return assignment

    @staticmethod
    def _topological_atoms(atom_deps: list[set[int]]) -> list[int]:
        remaining = set(range(len(atom_deps)))
        done: set[int] = set()
        order: list[int] = []
        while remaining:
            progressed = False
            for index in sorted(remaining):
                if atom_deps[index] <= done:
                    order.append(index)
                    done.add(index)
                    remaining.remove(index)
                    progressed = True
                    break
            if not progressed:
                raise OptimizationError("task-atom graph contains a cycle")
        return order
