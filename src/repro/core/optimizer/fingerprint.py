"""Pre-enumeration fingerprints of logical plans.

:func:`repro.core.checkpoint.plan_fingerprint` hashes *execution* plans
for checkpoint-staleness detection; that is too late for a plan cache,
which must decide **before** the optimizer runs whether an equivalent
query was enumerated already.  This module fingerprints the *logical*
plan instead: operator classes and wiring (by position, never by the
process-global operator ids), every UDF's compiled code, scalar
parameters, cost hints — and, unlike the checkpoint fingerprint, the
**source data itself**.  Including the data makes a cache hit a strong
statement: same fingerprint ⇒ same plan over the same inputs, so the
memoized execution plan produces byte-identical results.

Hashing data via ``repr`` errs on the safe side: objects whose repr
includes their identity (the ``object.__repr__`` default) never compare
equal across queries, so they produce spurious cache *misses* — never a
stale hit.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.core.dag import OperatorNode
from repro.core.logical.operators import Repeat
from repro.core.logical.plan import LogicalPlan


def _code_token(func) -> Any:
    """Hashable token for a callable: compiled bytecode, consts, names.

    Same idiom as the checkpoint fingerprint — closures hash their code,
    not their captured values, but logical-plan fingerprints fold the
    source data in separately, which covers the common parameterisation
    path (data-driven queries) without inspecting cell contents.
    """
    code = getattr(func, "__code__", None)
    if code is None:  # builtins, partials, callables: best effort
        return getattr(func, "__qualname__", None) or repr(type(func))
    consts = tuple(
        c.co_code.hex() if hasattr(c, "co_code") else repr(c)
        for c in code.co_consts
    )
    return (code.co_code.hex(), consts, code.co_names)


def _value_token(value: Any) -> Any:
    if isinstance(value, LogicalPlan):
        return ("plan", _plan_token(value))
    if callable(value):
        return ("code", _code_token(value))
    if isinstance(value, (list, tuple)):
        digest = hashlib.sha256()
        for item in value:
            digest.update(repr(item).encode("utf-8", "backslashreplace"))
            digest.update(b"\x00")
        return ("seq", len(value), digest.hexdigest())
    return ("val", repr(value))


def _op_token(op: OperatorNode) -> tuple:
    if isinstance(op, Repeat):
        body_ops = op.body.graph.operators
        body_index = {inner.id: pos for pos, inner in enumerate(body_ops)}
        return (
            type(op).__module__,
            type(op).__qualname__,
            (
                ("body", _plan_token(op.body)),
                ("body_input", body_index[op.body_input.id]),
                ("body_output", body_index[op.body_output.id]),
                ("times", op.times),
                ("condition", _value_token(op.condition)
                 if op.condition is not None else None),
                ("max_iterations", op.max_iterations),
                ("hints", repr(op.hints)),
            ),
        )
    items = []
    for attr in sorted(vars(op)):
        if attr == "id":  # process-global counter, never part of identity
            continue
        items.append((attr, _value_token(getattr(op, attr))))
    return (type(op).__module__, type(op).__qualname__, tuple(items))


def _plan_token(plan: LogicalPlan) -> tuple:
    graph = plan.graph
    ops = graph.operators  # insertion order: stable for rebuilt plans
    index = {op.id: pos for pos, op in enumerate(ops)}
    return tuple(
        (
            _op_token(op),
            tuple(index[producer.id] for producer in graph.inputs_of(op)),
        )
        for op in ops
    )


def logical_plan_fingerprint(plan: LogicalPlan) -> str:
    """Stable hash of a logical plan's structure, UDF code and data."""
    payload = repr(_plan_token(plan))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
