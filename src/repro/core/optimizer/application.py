"""Application-layer optimizer.

Implements the paper's §4.1: validate the input task, run the pre-defined
logical rewrites (push-downs, fusions — pluggable via
:mod:`repro.core.optimizer.rules`), then translate each logical operator
into wrapper physical operators through the declarative mapping registry.
Where a logical operator has several algorithmic implementations
(Example 2's ``SortGroupBy`` / ``HashGroupBy``) all variants are attached
to the plan so the core-layer optimizer can pick at costing time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.logical.operators import LogicalOperator, Repeat
from repro.core.logical.plan import LogicalPlan
from repro.core.mappings import OperatorMappings, default_mappings
from repro.core.observability.spans import KIND_OPTIMIZER, maybe_span
from repro.core.optimizer.rules import RuleRegistry, default_rules
from repro.core.physical.operators import (
    PhysicalOperator,
    PRepeat,
    PTableSource,
    PTextFileSource,
)
from repro.core.physical.plan import PhysicalPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.observability.spans import Tracer


class ApplicationOptimizer:
    """Translates logical plans into (variant-annotated) physical plans."""

    def __init__(
        self,
        mappings: OperatorMappings | None = None,
        rules: RuleRegistry | None = None,
        share_scans: bool = True,
    ):
        self.mappings = mappings or default_mappings()
        self.rules = rules or default_rules()
        self.share_scans = share_scans

    def optimize(
        self, plan: LogicalPlan, tracer: "Tracer | None" = None
    ) -> PhysicalPlan:
        """Validate, rewrite and translate ``plan``.

        The logical plan is modified in place by the rewrite rules (it is
        owned by the optimizer from this point on), then translated.
        With a ``tracer`` the logical→physical translation gets its own
        span (rewrite + translate + shared-scan phases annotated).
        """
        with maybe_span(
            tracer,
            "optimize.application",
            KIND_OPTIMIZER,
            logical_operators=len(list(plan.graph.operators)),
        ) as span:
            plan.validate()
            self.rules.run_to_fixpoint(plan)
            physical, _ = self._translate(plan)
            if self.share_scans:
                before = len(list(physical.graph.operators))
                self._share_scans(physical)
                after = len(list(physical.graph.operators))
                if span is not None and after != before:
                    span.set(scans_shared=before - after)
            physical.validate()
            if span is not None:
                span.set(
                    physical_operators=len(list(physical.graph.operators))
                )
            return physical

    # ------------------------------------------------------------------
    def _share_scans(self, physical: PhysicalPlan) -> None:
        """Merge duplicate scans of the same dataset into one operator.

        The paper's §4.2 asks the optimizer to "apply traditional
        physical optimizations, whenever possible.  Examples are shared
        scans...".  Two ``TableSource``/``TextFileSource`` operators over
        the same dataset (a self-join written as two scans, say) become
        one scan feeding both consumers, so the data is read — and
        charged — once.
        """
        graph = physical.graph
        seen: dict[tuple, PhysicalOperator] = {}
        for operator in list(graph.operators):
            if isinstance(operator, PTableSource):
                key = ("table", operator.dataset)
            elif isinstance(operator, PTextFileSource):
                key = ("textfile", operator.path)
            else:
                continue
            survivor = seen.get(key)
            if survivor is None:
                seen[key] = operator
                continue
            for consumer in graph.consumers_of(operator):
                while operator in graph.inputs_of(consumer):
                    graph.replace_input(consumer, operator, survivor)
            graph.remove_isolated(operator)

    # ------------------------------------------------------------------
    def _translate(
        self, plan: LogicalPlan
    ) -> tuple[PhysicalPlan, dict[int, PhysicalOperator]]:
        """Translate a logical plan; returns the plan and the operator map
        (logical operator id → primary physical operator)."""
        physical = PhysicalPlan()
        translated: dict[int, PhysicalOperator] = {}
        for logical in plan.graph.topological_order():
            primary = self._translate_operator(logical)
            inputs = [translated[p.id] for p in plan.graph.inputs_of(logical)]
            physical.add(primary, inputs)
            translated[logical.id] = primary
        return physical, translated

    def _translate_operator(self, logical: LogicalOperator) -> PhysicalOperator:
        if isinstance(logical, Repeat):
            return self._translate_repeat(logical)
        candidates = self.mappings.candidates(logical)
        primary = candidates[0]
        primary.alternates = candidates[1:]
        return primary

    def _translate_repeat(self, logical: Repeat) -> PRepeat:
        """Translate a loop by recursively translating its body plan.

        Rewrite rules are applied to the body as well — an optimization a
        loop body benefits from ``times`` times over.
        """
        self.rules.run_to_fixpoint(logical.body)
        body_plan, translated = self._translate(logical.body)
        return PRepeat(
            logical,
            body=body_plan,
            body_input=translated[logical.body_input.id],
            body_output=translated[logical.body_output.id],
        )
