"""Cost-model calibration by micro-profiling.

The paper requires cost models to be *plugins* (§4.2) and leaves open how
their constants are obtained; the RHEEM line of work later shipped an
offline profiler that learns them from micro-benchmarks.  This module is
that profiler for the in-process platform: it runs the shared algorithm
kernels over synthetic data of increasing sizes, measures **wall time**,
divides by the abstract work units of each run, and fits a per-unit cost
(robustly, by the median across kinds and sizes).

The result is a :class:`~repro.platforms.java.platform.JavaCostModel`
whose virtual milliseconds *are* measured milliseconds on this machine —
grounding the one platform that genuinely executes in-process, while the
simulated platforms keep their calibrated analytic models (DESIGN.md §2).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from operator import itemgetter

from repro.core.optimizer.cost import KernelCostModel, OperatorCostInput
from repro.core.optimizer.workunits import work_units
from repro.core.physical import kernels
from repro.core.physical.columnar import ColumnPredicate, ColumnwiseReduce
from repro.platforms.java.platform import JavaCostModel
from repro.util.rng import make_rng


@dataclass
class ProfileReport:
    """What the profiler measured, per operator kind."""

    #: kind -> list of (input size, wall ms, work units, ms per unit)
    samples: dict[str, list[tuple[int, float, float, float]]] = field(
        default_factory=dict
    )

    def per_unit_ms(self, kind: str | None = None) -> float:
        """Median measured milliseconds per abstract work unit."""
        if kind is not None:
            values = [s[3] for s in self.samples.get(kind, [])]
        else:
            values = [
                s[3] for samples in self.samples.values() for s in samples
            ]
        if not values:
            raise ValueError(f"no samples for kind {kind!r}")
        return statistics.median(values)

    def summary(self) -> str:
        lines = []
        for kind, samples in sorted(self.samples.items()):
            per_unit = self.per_unit_ms(kind)
            lines.append(f"{kind:<14} {per_unit * 1000:.3f} us/unit "
                         f"({len(samples)} samples)")
        lines.append(f"{'overall':<14} {self.per_unit_ms() * 1000:.3f} us/unit")
        return "\n".join(lines)


@dataclass
class DatapathProfile:
    """Measured wall-clock rates of the data path, row vs columnar.

    ``samples`` maps ``(stage, mode)`` to per-row milliseconds, one
    entry per profiled size.  Stages mirror
    :class:`~repro.core.optimizer.cost.KernelCostModel`: ``project`` /
    ``filter`` / ``reduceby`` in both modes, plus the row-mode-only
    boundary costs ``boundary.unpack`` (egest materialisation) and
    ``boundary.pack`` (columnar ingest).
    """

    #: (stage, mode) -> list of measured ms per row
    samples: dict[tuple[str, str], list[float]] = field(default_factory=dict)

    def per_row_ms(self, stage: str, mode: str) -> float:
        """Median measured milliseconds per row for one stage/mode."""
        values = self.samples.get((stage, mode), [])
        if not values:
            raise ValueError(f"no samples for ({stage!r}, {mode!r})")
        return statistics.median(values)

    def speedup(self, stage: str) -> float:
        """Measured row-mode / columnar-mode rate ratio for one stage."""
        columnar = self.per_row_ms(stage, "columnar")
        if columnar <= 0.0:
            return float("inf")
        return self.per_row_ms(stage, "row") / columnar

    def kernel_model(self) -> KernelCostModel:
        """A :class:`KernelCostModel` over the median measured rates."""
        return KernelCostModel(
            {key: statistics.median(vals) for key, vals in self.samples.items()}
        )

    def summary(self) -> str:
        lines = []
        for stage in ("project", "filter", "reduceby"):
            if (stage, "row") in self.samples:
                lines.append(
                    f"{stage:<10} row {self.per_row_ms(stage, 'row') * 1e6:9.1f} "
                    f"ns/row  columnar "
                    f"{self.per_row_ms(stage, 'columnar') * 1e6:9.1f} ns/row  "
                    f"({self.speedup(stage):.1f}x)"
                )
        for stage in ("boundary.unpack", "boundary.pack"):
            if (stage, "row") in self.samples:
                lines.append(
                    f"{stage:<16} {self.per_row_ms(stage, 'row') * 1e6:9.1f} ns/row"
                )
        return "\n".join(lines)


class CostProfiler:
    """Micro-benchmarks the kernels and fits per-unit costs."""

    def __init__(self, sizes: tuple[int, ...] = (2_000, 20_000), seed: int = 7):
        self.sizes = sizes
        self.seed = seed

    # ------------------------------------------------------------------
    def profile(self) -> ProfileReport:
        """Measure every profiled kind at every size."""
        report = ProfileReport()
        for size in self.sizes:
            rng = make_rng(self.seed, "profile", size)
            data = [(rng.randrange(size), rng.random()) for _ in range(size)]
            pairs = [(x % 97, y) for x, y in data]
            self._sample(report, "map", [size], size,
                         lambda: [x + 1 for x, _ in data])
            self._sample(report, "filter", [size], size // 2,
                         lambda: [t for t in data if t[0] % 2 == 0])
            self._sample(
                report, "groupby.hash", [size], 97,
                lambda: kernels.hash_group_by(pairs, lambda t: t[0]),
            )
            self._sample(
                report, "sort", [size], size,
                lambda: sorted(data, key=lambda t: t[1]),
            )
            self._sample(
                report, "join.hash", [size, size], size,
                lambda: list(
                    kernels.hash_join(pairs, pairs, lambda t: t[0],
                                      lambda t: t[0])
                )[: size],
            )
            self._sample(
                report, "distinct.hash", [size], 97,
                lambda: kernels.hash_distinct([x % 97 for x, _ in data]),
            )
        return report

    def calibrated_java_model(
        self, report: ProfileReport | None = None
    ) -> JavaCostModel:
        """A JavaCostModel whose per-unit cost was measured on this host."""
        report = report or self.profile()
        return JavaCostModel(per_unit_ms=report.per_unit_ms())

    # ------------------------------------------------------------------
    def profile_datapath(
        self, sizes: tuple[int, ...] | None = None
    ) -> DatapathProfile:
        """Measure row-mode vs columnar-native data-path rates.

        Runs the *actual* batch kernels (honouring the kernel kill
        switch, so the measurement reflects what would execute) over a
        synthetic wide numeric dataset: itemgetter projection,
        single-column predicate filter, columnwise reduce-by sweep, plus
        the boundary costs — row materialisation of packed buffers
        (what ``columnar.egest`` does) and packing rows into buffers
        (what ``columnar.ingest`` does).  Feeds
        :meth:`DatapathProfile.kernel_model`, which is what ``repro
        explain`` and the enumerator use to predict elision wins from
        measured rates rather than hard-coded discounts.
        """
        from repro.core.channels import ColumnarChannel
        from repro.core.physical import columnar

        sizes = sizes or self.sizes
        profile = DatapathProfile()
        projection = itemgetter(3, 1, 2, 0)
        predicate = ColumnPredicate(0, (497).__gt__)
        key = itemgetter(0)
        reducer = ColumnwiseReduce(("key", "sum", "sum", "min"))
        for size in sizes:
            rows = [
                (i % 997, float((i * 31) % 101), float(i % 11) * 0.5, i % 7)
                for i in range(size)
            ]
            channel = ColumnarChannel.from_rows(rows, "java")
            batch = channel.batch()
            cases = (
                ("project", "row", lambda: list(map(projection, rows))),
                ("project", "columnar",
                 lambda: columnar.native_map(projection, batch)),
                ("filter", "row", lambda: list(filter(predicate, rows))),
                ("filter", "columnar",
                 lambda: columnar.native_filter(predicate, batch)),
                ("reduceby", "row",
                 lambda: kernels.hash_reduce_by(rows, key, reducer)),
                ("reduceby", "columnar",
                 lambda: kernels.hash_reduce_by(
                     channel.batch(), key, reducer)),
                ("boundary.unpack", "row",
                 lambda: list(zip(*batch.columns))),
                ("boundary.pack", "row",
                 lambda: ColumnarChannel.from_rows(rows, "java")),
            )
            for stage, mode, fn in cases:
                fn()  # warm-up
                started = time.perf_counter()
                result = fn()
                wall_ms = (time.perf_counter() - started) * 1000.0
                del result
                profile.samples.setdefault((stage, mode), []).append(
                    wall_ms / max(size, 1)
                )
        return profile

    # ------------------------------------------------------------------
    def _sample(self, report, kind, in_cards, out_card, fn) -> None:
        # one warm-up, one measured run
        fn()
        started = time.perf_counter()
        result = fn()
        wall_ms = (time.perf_counter() - started) * 1000.0
        del result
        units = work_units(
            OperatorCostInput(
                kind=kind,
                input_cards=tuple(float(c) for c in in_cards),
                output_card=float(out_card),
            )
        )
        report.samples.setdefault(kind, []).append(
            (in_cards[0], wall_ms, units, wall_ms / max(units, 1.0))
        )
