"""Cost-model calibration by micro-profiling.

The paper requires cost models to be *plugins* (§4.2) and leaves open how
their constants are obtained; the RHEEM line of work later shipped an
offline profiler that learns them from micro-benchmarks.  This module is
that profiler for the in-process platform: it runs the shared algorithm
kernels over synthetic data of increasing sizes, measures **wall time**,
divides by the abstract work units of each run, and fits a per-unit cost
(robustly, by the median across kinds and sizes).

The result is a :class:`~repro.platforms.java.platform.JavaCostModel`
whose virtual milliseconds *are* measured milliseconds on this machine —
grounding the one platform that genuinely executes in-process, while the
simulated platforms keep their calibrated analytic models (DESIGN.md §2).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from repro.core.optimizer.cost import OperatorCostInput
from repro.core.optimizer.workunits import work_units
from repro.core.physical import kernels
from repro.platforms.java.platform import JavaCostModel
from repro.util.rng import make_rng


@dataclass
class ProfileReport:
    """What the profiler measured, per operator kind."""

    #: kind -> list of (input size, wall ms, work units, ms per unit)
    samples: dict[str, list[tuple[int, float, float, float]]] = field(
        default_factory=dict
    )

    def per_unit_ms(self, kind: str | None = None) -> float:
        """Median measured milliseconds per abstract work unit."""
        if kind is not None:
            values = [s[3] for s in self.samples.get(kind, [])]
        else:
            values = [
                s[3] for samples in self.samples.values() for s in samples
            ]
        if not values:
            raise ValueError(f"no samples for kind {kind!r}")
        return statistics.median(values)

    def summary(self) -> str:
        lines = []
        for kind, samples in sorted(self.samples.items()):
            per_unit = self.per_unit_ms(kind)
            lines.append(f"{kind:<14} {per_unit * 1000:.3f} us/unit "
                         f"({len(samples)} samples)")
        lines.append(f"{'overall':<14} {self.per_unit_ms() * 1000:.3f} us/unit")
        return "\n".join(lines)


class CostProfiler:
    """Micro-benchmarks the kernels and fits per-unit costs."""

    def __init__(self, sizes: tuple[int, ...] = (2_000, 20_000), seed: int = 7):
        self.sizes = sizes
        self.seed = seed

    # ------------------------------------------------------------------
    def profile(self) -> ProfileReport:
        """Measure every profiled kind at every size."""
        report = ProfileReport()
        for size in self.sizes:
            rng = make_rng(self.seed, "profile", size)
            data = [(rng.randrange(size), rng.random()) for _ in range(size)]
            pairs = [(x % 97, y) for x, y in data]
            self._sample(report, "map", [size], size,
                         lambda: [x + 1 for x, _ in data])
            self._sample(report, "filter", [size], size // 2,
                         lambda: [t for t in data if t[0] % 2 == 0])
            self._sample(
                report, "groupby.hash", [size], 97,
                lambda: kernels.hash_group_by(pairs, lambda t: t[0]),
            )
            self._sample(
                report, "sort", [size], size,
                lambda: sorted(data, key=lambda t: t[1]),
            )
            self._sample(
                report, "join.hash", [size, size], size,
                lambda: list(
                    kernels.hash_join(pairs, pairs, lambda t: t[0],
                                      lambda t: t[0])
                )[: size],
            )
            self._sample(
                report, "distinct.hash", [size], 97,
                lambda: kernels.hash_distinct([x % 97 for x, _ in data]),
            )
        return report

    def calibrated_java_model(
        self, report: ProfileReport | None = None
    ) -> JavaCostModel:
        """A JavaCostModel whose per-unit cost was measured on this host."""
        report = report or self.profile()
        return JavaCostModel(per_unit_ms=report.per_unit_ms())

    # ------------------------------------------------------------------
    def _sample(self, report, kind, in_cards, out_card, fn) -> None:
        # one warm-up, one measured run
        fn()
        started = time.perf_counter()
        result = fn()
        wall_ms = (time.perf_counter() - started) * 1000.0
        del result
        units = work_units(
            OperatorCostInput(
                kind=kind,
                input_cards=tuple(float(c) for c in in_cards),
                output_card=float(out_card),
            )
        )
        report.samples.setdefault(kind, []).append(
            (in_cards[0], wall_ms, units, wall_ms / max(units, 1.0))
        )
