"""Pluggable logical rewrite rules.

The paper (§4.2) requires rules to "be plugins and not hard-coded as in
traditional database optimizers".  A rule is an object with a ``apply``
method that performs at most one rewrite and reports whether it changed
the plan; the :class:`RuleRegistry` drives rules to a fixpoint with a
safety bound.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.logical.operators import Filter, Sort, Union
from repro.core.logical.plan import LogicalPlan
from repro.errors import OptimizationError


class LogicalRewriteRule(Protocol):
    """Interface implemented by all logical rewrite rules."""

    name: str

    def apply(self, plan: LogicalPlan) -> bool:
        """Perform at most one rewrite; return True when the plan changed."""
        ...  # pragma: no cover


class PushFilterBelowSort:
    """Rewrite ``Sort → Filter`` into ``Filter → Sort``.

    Filtering first shrinks the sort input; the transposition is always
    safe because filters are applied per quantum.  Only fires when the
    sort has a single consumer (otherwise other consumers would observe
    filtered data).
    """

    name = "push-filter-below-sort"

    def apply(self, plan: LogicalPlan) -> bool:
        graph = plan.graph
        for op in graph.operators:
            if not isinstance(op, Filter):
                continue
            (producer,) = graph.inputs_of(op)
            if not isinstance(producer, Sort):
                continue
            if len(graph.consumers_of(producer)) != 1:
                continue
            (grand_producer,) = graph.inputs_of(producer)
            consumers = graph.consumers_of(op)
            graph.replace_input(op, producer, grand_producer)
            graph.replace_input(producer, grand_producer, op)
            for consumer in consumers:
                graph.replace_input(consumer, op, producer)
            return True
        return False


class PushFilterBelowUnion:
    """Rewrite ``Union → Filter`` into ``Union(Filter, Filter)``.

    Lets each branch prune early (and, after platform assignment, on the
    platform where the branch already runs).  Fires only when the union
    feeds the filter alone.
    """

    name = "push-filter-below-union"

    def apply(self, plan: LogicalPlan) -> bool:
        graph = plan.graph
        for op in graph.operators:
            if not isinstance(op, Filter):
                continue
            (producer,) = graph.inputs_of(op)
            if not isinstance(producer, Union):
                continue
            if len(graph.consumers_of(producer)) != 1:
                continue
            left, right = graph.inputs_of(producer)
            left_filter = Filter(op.predicate, name=op.name, hints=op.hints)
            right_filter = Filter(op.predicate, name=op.name, hints=op.hints)
            graph.insert_between(left, producer, left_filter)
            graph.insert_between(right, producer, right_filter)
            graph.remove_unary(op)
            return True
        return False


class FuseAdjacentFilters:
    """Fuse ``Filter → Filter`` chains into one conjunctive filter.

    Saves one pass over the data and, on the simulated Spark platform, one
    narrow transformation per chain.
    """

    name = "fuse-adjacent-filters"

    def apply(self, plan: LogicalPlan) -> bool:
        graph = plan.graph
        for op in graph.operators:
            if not isinstance(op, Filter):
                continue
            (producer,) = graph.inputs_of(op)
            if not isinstance(producer, Filter):
                continue
            if len(graph.consumers_of(producer)) != 1:
                continue
            outer, inner = op.predicate, producer.predicate

            def fused(quantum, _inner=inner, _outer=outer):
                return _inner(quantum) and _outer(quantum)

            selectivity = None
            if (
                producer.hints.selectivity is not None
                and op.hints.selectivity is not None
            ):
                selectivity = producer.hints.selectivity * op.hints.selectivity
            hints = type(op.hints)(
                selectivity=selectivity,
                udf_load=producer.hints.udf_load + op.hints.udf_load,
            )
            fused_filter = Filter(fused, name="FusedFilter", hints=hints)
            (grand_producer,) = graph.inputs_of(producer)
            graph.insert_between(producer, op, fused_filter)
            graph.replace_input(fused_filter, producer, grand_producer)
            for consumer in graph.consumers_of(op):
                graph.replace_input(consumer, op, fused_filter)
            graph.remove_unary(op)
            graph.remove_unary(producer)
            return True
        return False


class RuleRegistry:
    """Holds the active rewrite rules and drives them to a fixpoint."""

    #: Upper bound on total rewrites, to guard against oscillating rules.
    MAX_REWRITES = 10_000

    def __init__(self, rules: list[LogicalRewriteRule] | None = None):
        self._rules: list[LogicalRewriteRule] = list(rules or [])

    def register(self, rule: LogicalRewriteRule) -> None:
        """Add a rule; later rules run after earlier ones in each sweep."""
        self._rules.append(rule)

    @property
    def rules(self) -> tuple[LogicalRewriteRule, ...]:
        return tuple(self._rules)

    def run_to_fixpoint(self, plan: LogicalPlan) -> int:
        """Apply rules until none fires; return the number of rewrites."""
        rewrites = 0
        changed = True
        while changed:
            changed = False
            for rule in self._rules:
                while rule.apply(plan):
                    rewrites += 1
                    changed = True
                    if rewrites > self.MAX_REWRITES:
                        raise OptimizationError(
                            f"rewrite rule {rule.name!r} did not converge"
                        )
        return rewrites


def default_rules() -> RuleRegistry:
    """The built-in rule set."""
    return RuleRegistry(
        [
            FuseAdjacentFilters(),
            PushFilterBelowSort(),
            PushFilterBelowUnion(),
        ]
    )
