"""Cardinality estimation for physical plans.

Estimates feed the cost models during optimization.  At *run time* the
executor re-reads the same cost models with **observed** cardinalities, so
virtual-time measurements never depend on these estimates — only plan
choices do, exactly as in a classical optimizer.

UDF opacity is the central difficulty the paper highlights for UDF-first
optimizers (§4.2); following its "context" proposal, estimates honour the
hints developers attach to logical operators (selectivity, output factor,
key fan-out) and fall back to conservative defaults otherwise.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.core.physical.operators import (
    PCollectionSource,
    PLimit,
    PRepeat,
    PSample,
    PTableSource,
    PTextFileSource,
    PhysicalOperator,
)
from repro.core.physical.plan import PhysicalPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.optimizer.calibration import CalibrationStore


class CardinalityEstimator:
    """Rule-of-thumb estimator with hint overrides.

    The class is deliberately stateless so applications can subclass and
    override :meth:`estimate_operator` for domain knowledge (the cleaning
    application overrides the blocking fan-out, for instance).
    """

    DEFAULT_FILTER_SELECTIVITY = 0.25
    DEFAULT_FLATMAP_FACTOR = 3.0
    DEFAULT_KEY_FANOUT = 0.1
    DEFAULT_DISTINCT_FANOUT = 0.5
    DEFAULT_TEXTFILE_BYTES_PER_LINE = 80
    DEFAULT_UNKNOWN_SOURCE_CARD = 10_000

    def estimate_plan(
        self, plan: PhysicalPlan, seeds: dict[int, float] | None = None
    ) -> dict[int, float]:
        """Estimate output cardinality for every operator in ``plan``.

        ``seeds`` pins the estimate of specific operators (by id) — the
        enumerator uses this to feed the known loop-state cardinality to
        the ``LoopInput`` of a ``Repeat`` body.

        Returns a map from operator id to estimated output cardinality.
        """
        estimates: dict[int, float] = dict(seeds or {})
        for operator in plan.graph.topological_order():
            if operator.id in estimates:
                continue
            input_cards = [
                estimates[producer.id]
                for producer in plan.graph.inputs_of(operator)
            ]
            estimates[operator.id] = self.estimate_operator(operator, input_cards)
        return estimates

    def estimate_operator(
        self, operator: PhysicalOperator, input_cards: list[float]
    ) -> float:
        """Estimate the output cardinality of a single operator."""
        kind = operator.kind
        hints = operator.hints
        n = input_cards[0] if input_cards else 0.0

        if isinstance(operator, PCollectionSource):
            return float(len(operator.data))
        if isinstance(operator, PTextFileSource):
            return self._estimate_textfile(operator.path)
        if isinstance(operator, PTableSource):
            # Refined by the storage-aware estimator subclass in
            # repro.storage.catalog when a catalog is attached.
            return float(self.DEFAULT_UNKNOWN_SOURCE_CARD)
        if kind == "source.loopinput":
            return float(self.DEFAULT_UNKNOWN_SOURCE_CARD)

        if kind in ("map", "zipwithid", "sort", "sink.collect"):
            return n
        if kind == "flatmap":
            factor = hints.output_factor
            if factor is None:
                factor = self.DEFAULT_FLATMAP_FACTOR
            return n * factor
        if kind == "filter":
            selectivity = hints.selectivity
            if selectivity is None:
                selectivity = self.DEFAULT_FILTER_SELECTIVITY
            return n * selectivity
        if kind.startswith("groupby.") or kind.startswith("reduceby."):
            fanout = hints.key_fanout
            if fanout is None:
                fanout = self.DEFAULT_KEY_FANOUT
            return max(1.0, n * fanout) if n else 0.0
        if kind == "reduce.global" or kind == "count":
            return 1.0 if n else 0.0
        if kind.startswith("join."):
            left, right = input_cards
            if hints.key_fanout is not None:
                return left * right * hints.key_fanout
            return max(left, right)
        if kind == "cross":
            left, right = input_cards
            return left * right
        if kind == "union":
            return sum(input_cards)
        if kind.startswith("distinct."):
            fanout = hints.key_fanout
            if fanout is None:
                fanout = self.DEFAULT_DISTINCT_FANOUT
            return n * fanout
        if isinstance(operator, PSample):
            return float(min(operator.size, n))
        if isinstance(operator, PLimit):
            return float(min(operator.n, n))
        if isinstance(operator, PRepeat):
            # Loop state is assumed size-preserving; the body estimate is
            # computed separately by the enumerator when costing the loop.
            return n
        # Unknown (application-defined) operator: assume size-preserving
        # over the first input unless hints say otherwise.
        factor = hints.output_factor if hints.output_factor is not None else 1.0
        return n * factor

    def _estimate_textfile(self, path: str) -> float:
        try:
            size = os.path.getsize(path)
        except OSError:
            return float(self.DEFAULT_UNKNOWN_SOURCE_CARD)
        return max(1.0, size / self.DEFAULT_TEXTFILE_BYTES_PER_LINE)


class CalibratedCardinalityEstimator(CardinalityEstimator):
    """An estimator whose guesses are corrected by learned priors.

    Wraps a *base* estimator (composition, so an application's domain
    subclass keeps working underneath) and multiplies its per-operator
    estimates by the
    :class:`~repro.core.optimizer.calibration.CalibrationStore`'s
    learned correction factor for the operator kind.

    Behavioural contract (what the equivalence suite pins down):

    * **cold start** — a store below ``min_samples`` yields correction
      1.0 for every kind, so a cold calibrated estimator is
      byte-identical to the raw one (same estimates, same plans);
    * **kill switch** — ``REPRO_NO_CALIBRATION=1`` (read per estimate
      call) bypasses corrections entirely;
    * **exact cardinalities are never corrected** — collection sources
      know their length, and seeded estimates (loop-state feeds) are
      pinned by :meth:`estimate_plan` before this class sees them;
    * **only kinds with intrinsic estimation uncertainty are
      corrected** (:attr:`CORRECTABLE_KINDS` /
      :attr:`CORRECTABLE_PREFIXES`): a filter's selectivity or a
      group-by's key fan-out is a guess worth learning, but a ``map``
      or ``sink.collect`` estimate is purely inherited from its input —
      its observed misestimate is the *upstream* operator's error, and
      correcting it too would compound the same fix twice along the
      chain;
    * :attr:`last_corrections` maps operator id -> applied factor for
      the most recent :meth:`estimate_plan` call, which is how applied
      corrections travel to the ExecutionPlan (and from there get
      divided back out when observations are fed to the store).
    """

    #: kinds whose estimates rest on a guessed scalar (selectivity,
    #: output factor, fan-out) — the learnable ones
    CORRECTABLE_KINDS = frozenset({"filter", "flatmap", "cross"})
    #: kind prefixes with guessed fan-outs / unknown source sizes
    CORRECTABLE_PREFIXES = (
        "groupby.",
        "reduceby.",
        "distinct.",
        "join.",
        "source.table",
        "source.textfile",
    )

    def __init__(
        self,
        store: "CalibrationStore",
        base: CardinalityEstimator | None = None,
    ):
        self.store = store
        self.base = base if base is not None else CardinalityEstimator()
        #: operator id -> correction factor applied in the latest
        #: :meth:`estimate_plan` (only factors that moved an estimate)
        self.last_corrections: dict[int, float] = {}

    def estimate_plan(
        self, plan: PhysicalPlan, seeds: dict[int, float] | None = None
    ) -> dict[int, float]:
        self.last_corrections = {}
        return super().estimate_plan(plan, seeds)

    def estimate_operator(
        self, operator: PhysicalOperator, input_cards: list[float]
    ) -> float:
        from repro.core.optimizer.calibration import calibration_enabled

        raw = self.base.estimate_operator(operator, input_cards)
        if not calibration_enabled():
            return raw
        if isinstance(operator, PCollectionSource):
            return raw  # exact by construction; never corrected
        if not self.correctable(operator.kind):
            return raw  # pass-through kind: error is inherited, not local
        factor = self.store.correction(operator.kind)
        if factor == 1.0:
            return raw
        corrected = raw * factor
        if corrected != raw:
            self.last_corrections[operator.id] = factor
            self.store.note_prior_applied(operator.kind)
        return corrected

    @classmethod
    def correctable(cls, kind: str) -> bool:
        """Whether learned corrections may move estimates of ``kind``."""
        return kind in cls.CORRECTABLE_KINDS or kind.startswith(
            cls.CORRECTABLE_PREFIXES
        )
