"""Optimizers for the three abstraction layers.

* :mod:`repro.core.optimizer.application` — application-layer optimizer:
  logical rewrites plus logical→physical translation.
* :mod:`repro.core.optimizer.enumerator` — core-layer multi-platform task
  optimizer: variant/platform selection, task-atom cutting, movement costs.
* :mod:`repro.core.optimizer.cost` / :mod:`repro.core.optimizer.cardinality`
  — pluggable cost models and cardinality estimation feeding both.
"""

from repro.core.optimizer.application import ApplicationOptimizer
from repro.core.optimizer.cardinality import CardinalityEstimator
from repro.core.optimizer.cost import MovementCostModel, PlatformCostModel
from repro.core.optimizer.enumerator import MultiPlatformOptimizer

__all__ = [
    "ApplicationOptimizer",
    "CardinalityEstimator",
    "MovementCostModel",
    "MultiPlatformOptimizer",
    "PlatformCostModel",
]
