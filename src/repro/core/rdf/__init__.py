"""RDF-encoded optimizer configuration (paper §8, challenge 1).

    "We envision an optimization process based on a flexible data model,
    such as RDF.  Developers will specify mappings between operators as
    well as encode rule- and cost-based models in RDF triples.  The
    optimizer will use this RDF representation as a first-class citizen
    in its optimization process."

This package provides exactly that loop:

* :class:`~repro.core.rdf.store.TripleStore` — a small indexed triple
  store with wildcard pattern queries;
* :mod:`~repro.core.rdf.vocabulary` — the ``rheem:`` vocabulary for
  operator mappings, rewrite rules, estimator defaults and platform cost
  parameters;
* :mod:`~repro.core.rdf.config` — encode the library defaults as triples
  (:func:`default_configuration`) and build a working optimizer
  configuration back out of a (possibly edited) store
  (:func:`configuration_from_triples`) — so an operator mapping or a
  cost constant can be changed by asserting a triple, no code edits.
"""

from repro.core.rdf.config import (
    RdfConfiguration,
    configuration_from_triples,
    default_configuration,
)
from repro.core.rdf.store import Triple, TripleStore
from repro.core.rdf import vocabulary

__all__ = [
    "RdfConfiguration",
    "Triple",
    "TripleStore",
    "configuration_from_triples",
    "default_configuration",
    "vocabulary",
]
