"""The ``rheem:`` configuration vocabulary.

CURIE helpers and predicate constants used to describe operator
mappings, rewrite rules, estimator defaults and platform cost-model
parameters as triples.
"""

from __future__ import annotations

PREFIX = "rheem"

# -- resource constructors ------------------------------------------------


def logical_op(name: str) -> str:
    """Resource for a logical operator type, e.g. ``rheem:op/GroupBy``."""
    return f"{PREFIX}:op/{name}"


def physical_op(name: str) -> str:
    """Resource for a physical operator class, e.g. ``rheem:phys/PHashGroupBy``."""
    return f"{PREFIX}:phys/{name}"


def mapping(logical_name: str, physical_name: str) -> str:
    """Resource for one mapping edge (reified so it can carry priority)."""
    return f"{PREFIX}:mapping/{logical_name}->{physical_name}"


def rule(name: str) -> str:
    """Resource for a rewrite rule, e.g. ``rheem:rule/fuse-adjacent-filters``."""
    return f"{PREFIX}:rule/{name}"


def platform(name: str) -> str:
    """Resource for a platform, e.g. ``rheem:platform/spark``."""
    return f"{PREFIX}:platform/{name}"


def estimator() -> str:
    """Resource holding cardinality-estimator defaults."""
    return f"{PREFIX}:estimator"


# -- predicates ------------------------------------------------------------

#: mapping reification: which logical/physical operator an edge connects
MAPS_LOGICAL = f"{PREFIX}:mapsLogical"
MAPS_PHYSICAL = f"{PREFIX}:mapsPhysical"
#: integer; lower = preferred (position in the variant list)
PRIORITY = f"{PREFIX}:priority"
#: boolean; retracting or setting False disables a mapping or a rule
ENABLED = f"{PREFIX}:enabled"

#: estimator defaults
FILTER_SELECTIVITY = f"{PREFIX}:defaultFilterSelectivity"
FLATMAP_FACTOR = f"{PREFIX}:defaultFlatmapFactor"
KEY_FANOUT = f"{PREFIX}:defaultKeyFanout"
DISTINCT_FANOUT = f"{PREFIX}:defaultDistinctFanout"

#: platform cost parameters (interpreted by each platform's model)
STARTUP_MS = f"{PREFIX}:startupMs"
PER_UNIT_MS = f"{PREFIX}:perUnitMs"
