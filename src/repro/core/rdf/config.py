"""Encode optimizer configuration as triples, and build it back.

Round trip: :func:`default_configuration` asserts the library defaults —
every operator mapping with its priority, every rewrite rule, the
estimator's fallback constants — into a :class:`TripleStore`.  Users
edit the store (assert, retract, re-prioritise) and call
:func:`configuration_from_triples` to obtain the
:class:`~repro.core.mappings.OperatorMappings`, rule registry and
estimator that :class:`~repro.RheemContext` accepts directly.

The physical-operator *names* in the triples resolve through a factory
registry; applications that add operators (the cleaning app's IEJoin)
register their factories so their mappings can be triple-encoded too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.logical import operators as logical_ops
from repro.core.logical.operators import LogicalOperator
from repro.core.mappings import OperatorMappings
from repro.core.optimizer.cardinality import CardinalityEstimator
from repro.core.optimizer.rules import (
    FuseAdjacentFilters,
    PushFilterBelowSort,
    PushFilterBelowUnion,
    RuleRegistry,
)
from repro.core.physical import operators as phys
from repro.core.rdf import vocabulary as voc
from repro.core.rdf.store import TripleStore
from repro.errors import MappingError

#: physical factory registry: name -> factory(logical) -> PhysicalOperator
PHYSICAL_FACTORIES: dict[str, Callable] = {
    "PCollectionSource": phys.PCollectionSource,
    "PTextFileSource": phys.PTextFileSource,
    "PTableSource": phys.PTableSource,
    "PLoopInput": phys.PLoopInput,
    "PCollectSink": phys.PCollectSink,
    "PMap": phys.PMap,
    "PFlatMap": phys.PFlatMap,
    "PFilter": phys.PFilter,
    "PZipWithId": phys.PZipWithId,
    "PHashGroupBy": phys.PHashGroupBy,
    "PSortGroupBy": phys.PSortGroupBy,
    "PReduceBy": phys.PReduceBy,
    "PGlobalReduce": phys.PGlobalReduce,
    "PHashJoin": phys.PHashJoin,
    "PSortMergeJoin": phys.PSortMergeJoin,
    "PCrossProduct": phys.PCrossProduct,
    "PUnion": phys.PUnion,
    "PSort": phys.PSort,
    "PHashDistinct": phys.PHashDistinct,
    "PSortDistinct": phys.PSortDistinct,
    "PSample": phys.PSample,
    "PCount": phys.PCount,
    "PLimit": phys.PLimit,
}

#: logical operator types addressable from triples: name -> class
LOGICAL_TYPES: dict[str, type[LogicalOperator]] = {
    name: getattr(logical_ops, name)
    for name in (
        "CollectionSource", "TextFileSource", "TableSource", "LoopInput",
        "CollectSink", "Map", "FlatMap", "Filter", "ZipWithId", "GroupBy",
        "ReduceBy", "GlobalReduce", "Join", "CrossProduct", "Union", "Sort",
        "Distinct", "Sample", "Count", "Limit",
    )
}

#: rewrite rules addressable from triples
RULE_FACTORIES: dict[str, Callable] = {
    "fuse-adjacent-filters": FuseAdjacentFilters,
    "push-filter-below-sort": PushFilterBelowSort,
    "push-filter-below-union": PushFilterBelowUnion,
}

#: default (logical name, physical name) mapping edges, in priority order
DEFAULT_MAPPING_EDGES: list[tuple[str, str]] = [
    ("CollectionSource", "PCollectionSource"),
    ("TextFileSource", "PTextFileSource"),
    ("TableSource", "PTableSource"),
    ("LoopInput", "PLoopInput"),
    ("CollectSink", "PCollectSink"),
    ("Map", "PMap"),
    ("FlatMap", "PFlatMap"),
    ("Filter", "PFilter"),
    ("ZipWithId", "PZipWithId"),
    ("GroupBy", "PHashGroupBy"),
    ("GroupBy", "PSortGroupBy"),
    ("ReduceBy", "PReduceBy"),
    ("GlobalReduce", "PGlobalReduce"),
    ("Join", "PHashJoin"),
    ("Join", "PSortMergeJoin"),
    ("CrossProduct", "PCrossProduct"),
    ("Union", "PUnion"),
    ("Sort", "PSort"),
    ("Distinct", "PHashDistinct"),
    ("Distinct", "PSortDistinct"),
    ("Sample", "PSample"),
    ("Count", "PCount"),
    ("Limit", "PLimit"),
]


def register_physical_factory(name: str, factory: Callable) -> None:
    """Expose an application-defined physical operator to RDF mappings."""
    PHYSICAL_FACTORIES[name] = factory


def register_logical_type(name: str, klass: type[LogicalOperator]) -> None:
    """Expose an application-defined logical operator to RDF mappings."""
    LOGICAL_TYPES[name] = klass


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def default_configuration() -> TripleStore:
    """The library's default configuration, as triples."""
    store = TripleStore()
    priorities: dict[str, int] = {}
    for logical_name, physical_name in DEFAULT_MAPPING_EDGES:
        edge = voc.mapping(logical_name, physical_name)
        store.add(edge, voc.MAPS_LOGICAL, voc.logical_op(logical_name))
        store.add(edge, voc.MAPS_PHYSICAL, voc.physical_op(physical_name))
        priority = priorities.get(logical_name, 0)
        priorities[logical_name] = priority + 1
        store.add(edge, voc.PRIORITY, priority)
        store.add(edge, voc.ENABLED, True)
    for rule_name in RULE_FACTORIES:
        store.add(voc.rule(rule_name), voc.ENABLED, True)
    estimator = voc.estimator()
    store.add(estimator, voc.FILTER_SELECTIVITY,
              CardinalityEstimator.DEFAULT_FILTER_SELECTIVITY)
    store.add(estimator, voc.FLATMAP_FACTOR,
              CardinalityEstimator.DEFAULT_FLATMAP_FACTOR)
    store.add(estimator, voc.KEY_FANOUT,
              CardinalityEstimator.DEFAULT_KEY_FANOUT)
    store.add(estimator, voc.DISTINCT_FANOUT,
              CardinalityEstimator.DEFAULT_DISTINCT_FANOUT)
    return store


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
@dataclass
class RdfConfiguration:
    """What a triple store describes: drop-in RheemContext arguments."""

    mappings: OperatorMappings
    rules: RuleRegistry
    estimator: CardinalityEstimator


def configuration_from_triples(store: TripleStore) -> RdfConfiguration:
    """Build a working optimizer configuration from ``store``.

    Mapping edges are ordered by their ``rheem:priority`` (lowest first =
    default variant); edges and rules with ``rheem:enabled`` false (or
    retracted) are skipped.
    """
    mappings = OperatorMappings()
    edges: list[tuple[int, str, str, str]] = []
    for edge in store.subjects(voc.MAPS_LOGICAL):
        if store.value(edge, voc.ENABLED, default=False) is not True:
            continue
        logical_uri = store.value(edge, voc.MAPS_LOGICAL)
        physical_uri = store.value(edge, voc.MAPS_PHYSICAL)
        priority = store.value(edge, voc.PRIORITY, default=0)
        edges.append((int(priority), edge, logical_uri, physical_uri))
    edges.sort()
    for _, edge, logical_uri, physical_uri in edges:
        logical_name = logical_uri.rsplit("/", 1)[-1]
        physical_name = physical_uri.rsplit("/", 1)[-1]
        if logical_name not in LOGICAL_TYPES:
            raise MappingError(
                f"triple {edge}: unknown logical operator {logical_name!r}"
            )
        if physical_name not in PHYSICAL_FACTORIES:
            raise MappingError(
                f"triple {edge}: unknown physical operator {physical_name!r}"
            )
        mappings.register(
            LOGICAL_TYPES[logical_name], PHYSICAL_FACTORIES[physical_name]
        )

    rules = RuleRegistry()
    for rule_name, factory in RULE_FACTORIES.items():
        if store.value(voc.rule(rule_name), voc.ENABLED, default=False) is True:
            rules.register(factory())

    estimator = CardinalityEstimator()
    est = voc.estimator()
    estimator.DEFAULT_FILTER_SELECTIVITY = float(
        store.value(est, voc.FILTER_SELECTIVITY,
                    CardinalityEstimator.DEFAULT_FILTER_SELECTIVITY)
    )
    estimator.DEFAULT_FLATMAP_FACTOR = float(
        store.value(est, voc.FLATMAP_FACTOR,
                    CardinalityEstimator.DEFAULT_FLATMAP_FACTOR)
    )
    estimator.DEFAULT_KEY_FANOUT = float(
        store.value(est, voc.KEY_FANOUT,
                    CardinalityEstimator.DEFAULT_KEY_FANOUT)
    )
    estimator.DEFAULT_DISTINCT_FANOUT = float(
        store.value(est, voc.DISTINCT_FANOUT,
                    CardinalityEstimator.DEFAULT_DISTINCT_FANOUT)
    )
    return RdfConfiguration(mappings=mappings, rules=rules, estimator=estimator)
