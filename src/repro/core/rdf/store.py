"""A compact in-memory triple store with pattern matching.

Subjects and predicates are strings (CURIE-style, e.g.
``rheem:op/Filter``); objects are strings, numbers or booleans.  The
store keeps three permutation indexes so any wildcard pattern resolves
through an index rather than a scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import RheemError


class TripleStoreError(RheemError):
    """Malformed triple or pattern."""


@dataclass(frozen=True, order=True)
class Triple:
    """One (subject, predicate, object) statement."""

    subject: str
    predicate: str
    object: Any

    def __str__(self) -> str:
        return f"({self.subject} {self.predicate} {self.object!r})"


class TripleStore:
    """Indexed set of triples with wildcard queries (None = any)."""

    def __init__(self) -> None:
        self._triples: set[Triple] = set()
        self._by_subject: dict[str, set[Triple]] = {}
        self._by_predicate: dict[str, set[Triple]] = {}
        self._by_object: dict[Any, set[Triple]] = {}

    # ------------------------------------------------------------------
    def add(self, subject: str, predicate: str, obj: Any) -> Triple:
        """Assert one triple (idempotent); returns it."""
        if not subject or not predicate:
            raise TripleStoreError("subject and predicate must be non-empty")
        triple = Triple(subject, predicate, obj)
        if triple in self._triples:
            return triple
        self._triples.add(triple)
        self._by_subject.setdefault(subject, set()).add(triple)
        self._by_predicate.setdefault(predicate, set()).add(triple)
        if _hashable(obj):
            self._by_object.setdefault(obj, set()).add(triple)
        return triple

    def remove(self, subject: str, predicate: str, obj: Any) -> bool:
        """Retract one triple; returns whether it existed."""
        triple = Triple(subject, predicate, obj)
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._by_subject[subject].discard(triple)
        self._by_predicate[predicate].discard(triple)
        if _hashable(obj):
            self._by_object.get(obj, set()).discard(triple)
        return True

    def retract_pattern(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: Any = None,
    ) -> int:
        """Retract every triple matching the pattern; returns the count."""
        victims = list(self.query(subject, predicate, obj))
        for triple in victims:
            self.remove(triple.subject, triple.predicate, triple.object)
        return len(victims)

    # ------------------------------------------------------------------
    def query(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: Any = None,
    ) -> Iterator[Triple]:
        """All triples matching the pattern (None matches anything).

        Results are yielded in deterministic (sorted) order.
        """
        candidates: set[Triple]
        if subject is not None:
            candidates = self._by_subject.get(subject, set())
        elif predicate is not None:
            candidates = self._by_predicate.get(predicate, set())
        elif obj is not None and _hashable(obj):
            candidates = self._by_object.get(obj, set())
        else:
            candidates = self._triples
        for triple in sorted(candidates, key=lambda t: (t.subject, t.predicate, repr(t.object))):
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.object != obj:
                continue
            yield triple

    def value(
        self, subject: str, predicate: str, default: Any = None
    ) -> Any:
        """The single object of (subject, predicate), or ``default``.

        Raises when several distinct objects are asserted — configuration
        predicates are functional.
        """
        matches = list(self.query(subject, predicate))
        if not matches:
            return default
        if len(matches) > 1:
            raise TripleStoreError(
                f"{subject} {predicate} has {len(matches)} values; expected one"
            )
        return matches[0].object

    def subjects(self, predicate: str | None = None, obj: Any = None) -> list[str]:
        """Distinct subjects matching (•, predicate, obj), sorted."""
        return sorted({t.subject for t in self.query(None, predicate, obj)})

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(sorted(self._triples, key=lambda t: (t.subject, t.predicate, repr(t.object))))

    def dump(self) -> str:
        """Human-readable N-Triples-ish rendering."""
        return "\n".join(str(triple) for triple in self)


def _hashable(obj: Any) -> bool:
    try:
        hash(obj)
    except TypeError:
        return False
    return True
