"""Algorithm kernels backing the physical operators.

A physical operator "represents an algorithmic decision for executing an
analytic task" (paper §3.1) — hash- versus sort-based grouping, hash
versus sort-merge joins, and so on.  The decisions live here as pure
functions over Python sequences so that every processing platform reuses
the *same algorithm* while layering its own orchestration (partitioning,
shuffles, relational storage) around it.  That separation is exactly the
physical/execution split the paper advocates.
"""

from __future__ import annotations

import random
from functools import reduce as _reduce
from itertools import product as _product
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.physical import columnar
from repro.core.physical.compiled import kernels_enabled, note_kernel
from repro.core.types import KeyUdf


def _rows(items: Iterable[Any]) -> list[Any]:
    """Materialise once so key columns and rows can be zipped safely."""
    if getattr(items, "is_columnar_batch", False):
        return items.rows()
    return items if isinstance(items, list) else list(items)


def _key_build(side: Any, key: KeyUdf) -> tuple[Any, list[Any], bool]:
    """``(keys, rows, columnar)`` — the key build for a hash table.

    For a :class:`~repro.core.physical.columnar.ColumnarBatch` with a
    single-column key, the key stream is the packed column buffer itself
    (no per-row ``key(row)`` calls); otherwise one ``map(key, rows)``
    C pass over the materialised rows.
    """
    native = columnar.native_keys(side, key)
    if native is not None:
        return native[0], native[1], True
    rows = _rows(side)
    return map(key, rows), rows, False


def hash_group_by(items: Iterable[Any], key: KeyUdf) -> list[tuple[Any, list[Any]]]:
    """Group ``items`` by ``key`` using a hash table.

    Output order follows first appearance of each key, which keeps results
    deterministic for tests.

    The batch kernel prebuilds the key column with ``map(key, rows)`` —
    one C-level pass that never re-enters the interpreter when ``key``
    is an ``operator.itemgetter``/``attrgetter`` — and zips it with the
    rows while filling the hash table.
    """
    if kernels_enabled():
        keys, rows, native = _key_build(items, key)
        note_kernel(
            "groupby.hash.columnar" if native else "groupby.hash.batch"
        )
        groups: dict[Any, list[Any]] = {}
        setdefault = groups.setdefault
        for item_key, item in zip(keys, rows):
            setdefault(item_key, []).append(item)
        return list(groups.items())
    groups = {}
    for item in items:
        groups.setdefault(key(item), []).append(item)
    return list(groups.items())


def sort_group_by(items: Iterable[Any], key: KeyUdf) -> list[tuple[Any, list[Any]]]:
    """Group ``items`` by ``key`` by sorting then scanning adjacent runs.

    Requires keys to be orderable; produces groups in ascending key order.
    """
    ordered = sorted(items, key=key)
    groups: list[tuple[Any, list[Any]]] = []
    current_key: Any = None
    current_group: list[Any] | None = None
    for item in ordered:
        item_key = key(item)
        if current_group is None or item_key != current_key:
            current_group = [item]
            current_key = item_key
            groups.append((item_key, current_group))
        else:
            current_group.append(item)
    return groups


def hash_reduce_by(
    items: Iterable[Any], key: KeyUdf, reducer: Callable[[Any, Any], Any]
) -> list[Any]:
    """Incrementally reduce ``items`` sharing a key (hash-based combine).

    Returns one combined quantum per distinct key, in first-appearance
    order.  The reducer must preserve the key of its operands (the usual
    ``reduceByKey`` contract), which is what allows distributed engines to
    re-derive the key from partially combined quanta.
    """
    if kernels_enabled():
        if getattr(items, "is_columnar_batch", False):
            swept = columnar.native_reduce_by(items, key, reducer)
            if swept is not None:
                return swept
        keys, rows, native = _key_build(items, key)
        note_kernel(
            "reduceby.hash.columnar" if native else "reduceby.hash.batch"
        )
        accumulators: dict[Any, Any] = {}
        for item_key, item in zip(keys, rows):
            if item_key in accumulators:
                accumulators[item_key] = reducer(accumulators[item_key], item)
            else:
                accumulators[item_key] = item
        return list(accumulators.values())
    accumulators = {}
    for item in items:
        item_key = key(item)
        if item_key in accumulators:
            accumulators[item_key] = reducer(accumulators[item_key], item)
        else:
            accumulators[item_key] = item
    return list(accumulators.values())


def global_reduce(items: Iterable[Any], reducer: Callable[[Any, Any], Any]) -> list[Any]:
    """Fold all items into at most one quantum (empty input → empty output)."""
    iterator = iter(items)
    try:
        accumulator = next(iterator)
    except StopIteration:
        return []
    if kernels_enabled():
        if getattr(items, "is_columnar_batch", False) and items.scalar:
            # iter(batch) on a scalar layout walks the packed buffer
            # directly — the fold never touches a row list
            note_kernel("reduce.global.columnar")
        else:
            note_kernel("reduce.global.batch")
        return [_reduce(reducer, iterator, accumulator)]
    for item in iterator:
        accumulator = reducer(accumulator, item)
    return [accumulator]


def hash_join(
    left: Sequence[Any], right: Sequence[Any], left_key: KeyUdf, right_key: KeyUdf
) -> Iterator[tuple[Any, Any]]:
    """Classic build/probe hash equi-join; builds on the smaller side.

    The batch kernel prebuilds both key columns with ``map(key, side)``
    (one C pass per side — free for itemgetter keys) and zips keys with
    rows through build and probe.
    """
    if kernels_enabled():
        note_kernel("join.hash.batch")
        yield from _hash_join_batch(left, right, left_key, right_key)
        return
    if len(left) <= len(right):
        table: dict[Any, list[Any]] = {}
        for item in left:
            table.setdefault(left_key(item), []).append(item)
        for right_item in right:
            for left_item in table.get(right_key(right_item), ()):
                yield (left_item, right_item)
    else:
        table = {}
        for item in right:
            table.setdefault(right_key(item), []).append(item)
        for left_item in left:
            for right_item in table.get(left_key(left_item), ()):
                yield (left_item, right_item)


def _hash_join_batch(
    left: Sequence[Any], right: Sequence[Any], left_key: KeyUdf, right_key: KeyUdf
) -> Iterator[tuple[Any, Any]]:
    empty: tuple[Any, ...] = ()
    left_keys, left_rows, left_native = _key_build(left, left_key)
    right_keys, right_rows, right_native = _key_build(right, right_key)
    if left_native or right_native:
        note_kernel("join.hash.columnar")
    if len(left_rows) <= len(right_rows):
        table: dict[Any, list[Any]] = {}
        setdefault = table.setdefault
        for item_key, item in zip(left_keys, left_rows):
            setdefault(item_key, []).append(item)
        get = table.get
        for item_key, right_item in zip(right_keys, right_rows):
            for left_item in get(item_key, empty):
                yield (left_item, right_item)
    else:
        table = {}
        setdefault = table.setdefault
        for item_key, item in zip(right_keys, right_rows):
            setdefault(item_key, []).append(item)
        get = table.get
        for item_key, left_item in zip(left_keys, left_rows):
            for right_item in get(item_key, empty):
                yield (left_item, right_item)


def sort_merge_join(
    left: Sequence[Any], right: Sequence[Any], left_key: KeyUdf, right_key: KeyUdf
) -> Iterator[tuple[Any, Any]]:
    """Sort-merge equi-join; requires orderable keys."""
    left_sorted = sorted(left, key=left_key)
    right_sorted = sorted(right, key=right_key)
    i = j = 0
    while i < len(left_sorted) and j < len(right_sorted):
        lk = left_key(left_sorted[i])
        rk = right_key(right_sorted[j])
        if lk < rk:
            i += 1
        elif lk > rk:
            j += 1
        else:
            # Gather the full run of equal keys on both sides.
            i_end = i
            while i_end < len(left_sorted) and left_key(left_sorted[i_end]) == lk:
                i_end += 1
            j_end = j
            while j_end < len(right_sorted) and right_key(right_sorted[j_end]) == rk:
                j_end += 1
            for left_item in left_sorted[i:i_end]:
                for right_item in right_sorted[j:j_end]:
                    yield (left_item, right_item)
            i, j = i_end, j_end


def nested_loop_join(
    left: Sequence[Any],
    right: Sequence[Any],
    predicate: Callable[[Any, Any], bool],
) -> Iterator[tuple[Any, Any]]:
    """Theta-join by exhaustive pairing; the fallback for arbitrary predicates."""
    for left_item in left:
        for right_item in right:
            if predicate(left_item, right_item):
                yield (left_item, right_item)


def cross_product(left: Sequence[Any], right: Sequence[Any]) -> Iterator[tuple[Any, Any]]:
    """Cartesian product of two sequences."""
    if kernels_enabled():
        note_kernel("cross.batch")
        return _product(left, right)
    return ((li, ri) for li in left for ri in right)


def hash_distinct(items: Iterable[Any]) -> list[Any]:
    """Deduplicate hashable items, preserving first-appearance order."""
    if kernels_enabled():
        note_kernel("distinct.hash.batch")
        # dict preserves insertion order; dict.fromkeys dedupes in one
        # C pass over hashable quanta
        return list(dict.fromkeys(items))
    seen: set[Any] = set()
    result: list[Any] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            result.append(item)
    return result


def sort_distinct(items: Iterable[Any]) -> list[Any]:
    """Deduplicate by sorting; output in ascending order."""
    ordered = sorted(items)
    result: list[Any] = []
    for item in ordered:
        if not result or item != result[-1]:
            result.append(item)
    return result


def uniform_sample(items: Sequence[Any], size: int, seed: int) -> list[Any]:
    """Sample ``size`` items uniformly without replacement (deterministic)."""
    if size >= len(items):
        return list(items)
    rng = random.Random(seed)
    return rng.sample(list(items), size)
