"""Physical operators — the core-layer, platform-independent pool.

Each physical operator wraps the logical operator it implements ("wrapper
operators" in §3.2) and records the algorithmic decision taken (its
``kind``, e.g. ``groupby.hash`` versus ``groupby.sort``).  The multi-
platform optimizer chooses among algorithmic *variants* of the same
logical operator and among *platforms* jointly, using the pluggable cost
models.

Applications can extend the pool: the data-cleaning application registers
an ``IEJoin`` physical operator (paper §5) through the same mapping
registry used by the built-ins.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.dag import OperatorNode
from repro.core.logical.operators import (
    CollectionSource,
    CollectSink,
    CostHints,
    Count,
    CrossProduct,
    Distinct,
    Filter,
    FlatMap,
    GlobalReduce,
    GroupBy,
    Join,
    Limit,
    LogicalOperator,
    LoopInput,
    Map,
    ReduceBy,
    Repeat,
    Sample,
    Sort,
    TableSource,
    TextFileSource,
    Union,
    ZipWithId,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.physical.plan import PhysicalPlan


class PhysicalOperator(OperatorNode):
    """Base class of the physical operator pool.

    ``kind`` identifies the operator family and algorithm (cost models key
    off it); ``logical`` is the wrapped application-layer operator whose
    UDFs supply the actual task logic.
    """

    #: family.algorithm identifier, overridden by subclasses.
    kind: str = "abstract"

    def __init__(self, logical: LogicalOperator | None, name: str | None = None):
        super().__init__(name)
        self.logical = logical
        #: Algorithmic variants of this operator the enumerator may swap in.
        self.alternates: list["PhysicalOperator"] = []

    @property
    def hints(self) -> CostHints:
        """Optimizer context, inherited from the wrapped logical operator."""
        if self.logical is not None:
            return self.logical.hints
        return CostHints()

    def describe(self) -> str:
        return f"{self.name}[{self.kind}]"


# ----------------------------------------------------------------------
# sources and sinks
# ----------------------------------------------------------------------
class PCollectionSource(PhysicalOperator):
    kind = "source.collection"
    num_inputs = 0

    def __init__(self, logical: CollectionSource):
        super().__init__(logical, "PCollectionSource")
        self.data = logical.data


class PTextFileSource(PhysicalOperator):
    kind = "source.textfile"
    num_inputs = 0

    def __init__(self, logical: TextFileSource):
        super().__init__(logical, "PTextFileSource")
        self.path = logical.path


class PTableSource(PhysicalOperator):
    kind = "source.table"
    num_inputs = 0

    def __init__(self, logical: TableSource):
        super().__init__(logical, "PTableSource")
        self.dataset = logical.dataset


class PLoopInput(PhysicalOperator):
    kind = "source.loopinput"
    num_inputs = 0

    def __init__(self, logical: LoopInput):
        super().__init__(logical, "PLoopInput")


class PCollectSink(PhysicalOperator):
    kind = "sink.collect"

    def __init__(self, logical: CollectSink):
        super().__init__(logical, "PCollectSink")


# ----------------------------------------------------------------------
# per-quantum operators
# ----------------------------------------------------------------------
class PMap(PhysicalOperator):
    kind = "map"

    def __init__(self, logical: Map):
        super().__init__(logical, "PMap")
        self.udf = logical.udf


class PFlatMap(PhysicalOperator):
    kind = "flatmap"

    def __init__(self, logical: FlatMap):
        super().__init__(logical, "PFlatMap")
        self.udf = logical.udf


class PFilter(PhysicalOperator):
    kind = "filter"

    def __init__(self, logical: Filter):
        super().__init__(logical, "PFilter")
        self.predicate = logical.predicate


class PZipWithId(PhysicalOperator):
    kind = "zipwithid"

    def __init__(self, logical: ZipWithId):
        super().__init__(logical, "PZipWithId")


# ----------------------------------------------------------------------
# grouping and reduction
# ----------------------------------------------------------------------
class PHashGroupBy(PhysicalOperator):
    """Hash-based grouping (the paper's ``HashGroupBy``)."""

    kind = "groupby.hash"

    def __init__(self, logical: GroupBy):
        super().__init__(logical, "PHashGroupBy")
        self.key = logical.key


class PSortGroupBy(PhysicalOperator):
    """Sort-based grouping (the paper's ``SortGroupBy``)."""

    kind = "groupby.sort"

    def __init__(self, logical: GroupBy):
        super().__init__(logical, "PSortGroupBy")
        self.key = logical.key


class PReduceBy(PhysicalOperator):
    kind = "reduceby.hash"

    def __init__(self, logical: ReduceBy):
        super().__init__(logical, "PReduceBy")
        self.key = logical.key
        self.reducer = logical.reducer


class PGlobalReduce(PhysicalOperator):
    kind = "reduce.global"

    def __init__(self, logical: GlobalReduce):
        super().__init__(logical, "PGlobalReduce")
        self.reducer = logical.reducer


# ----------------------------------------------------------------------
# joins and set operators
# ----------------------------------------------------------------------
class PHashJoin(PhysicalOperator):
    kind = "join.hash"
    num_inputs = 2

    def __init__(self, logical: Join):
        super().__init__(logical, "PHashJoin")
        self.left_key = logical.left_key
        self.right_key = logical.right_key


class PSortMergeJoin(PhysicalOperator):
    kind = "join.sortmerge"
    num_inputs = 2

    def __init__(self, logical: Join):
        super().__init__(logical, "PSortMergeJoin")
        self.left_key = logical.left_key
        self.right_key = logical.right_key


class PBroadcastJoin(PhysicalOperator):
    """Equi-join that replicates the (small) right side to every task.

    On a distributed platform this avoids shuffling the big left side
    entirely — the classic map-side join.  The optimizer should pick it
    exactly when the right input is small.
    """

    kind = "join.broadcast"
    num_inputs = 2

    def __init__(self, logical: Join):
        super().__init__(logical, "PBroadcastJoin")
        self.left_key = logical.left_key
        self.right_key = logical.right_key


class PNestedLoopJoin(PhysicalOperator):
    """Theta-join fallback over an arbitrary pair predicate.

    Built from :class:`~repro.core.logical.operators.CrossProduct` followed
    by a filter when the application optimizer detects that fusion is
    profitable, or used directly by applications.
    """

    kind = "join.nestedloop"
    num_inputs = 2

    def __init__(self, logical: LogicalOperator | None,
                 predicate: Callable[[Any, Any], bool]):
        super().__init__(logical, "PNestedLoopJoin")
        self.pair_predicate = predicate


class PCrossProduct(PhysicalOperator):
    kind = "cross"
    num_inputs = 2

    def __init__(self, logical: CrossProduct):
        super().__init__(logical, "PCrossProduct")


class PUnion(PhysicalOperator):
    kind = "union"
    num_inputs = 2

    def __init__(self, logical: Union):
        super().__init__(logical, "PUnion")


# ----------------------------------------------------------------------
# ordering, dedup, sampling, counting
# ----------------------------------------------------------------------
class PSort(PhysicalOperator):
    kind = "sort"

    def __init__(self, logical: Sort):
        super().__init__(logical, "PSort")
        self.key = logical.key
        self.reverse = logical.reverse


class PHashDistinct(PhysicalOperator):
    kind = "distinct.hash"

    def __init__(self, logical: Distinct):
        super().__init__(logical, "PHashDistinct")


class PSortDistinct(PhysicalOperator):
    kind = "distinct.sort"

    def __init__(self, logical: Distinct):
        super().__init__(logical, "PSortDistinct")


class PSample(PhysicalOperator):
    kind = "sample"

    def __init__(self, logical: Sample):
        super().__init__(logical, "PSample")
        self.size = logical.size
        self.seed = logical.seed


class PCount(PhysicalOperator):
    kind = "count"

    def __init__(self, logical: Count):
        super().__init__(logical, "PCount")


class PLimit(PhysicalOperator):
    kind = "limit"

    def __init__(self, logical: "Limit"):
        super().__init__(logical, "PLimit")
        self.n = logical.n


# ----------------------------------------------------------------------
# control flow
# ----------------------------------------------------------------------
class PRepeat(PhysicalOperator):
    """Loop over a nested *physical* body plan.

    The application optimizer translates the logical body recursively; the
    multi-platform optimizer then assigns the whole loop to one platform
    (loop bodies are latency sensitive, so splitting one iteration across
    platforms is rarely profitable — the cost model confirms rather than
    assumes this by comparing against the single-platform bound).
    """

    kind = "repeat"

    def __init__(
        self,
        logical: Repeat,
        body: "PhysicalPlan",
        body_input: PhysicalOperator,
        body_output: PhysicalOperator,
    ):
        super().__init__(logical, "PRepeat")
        self.body = body
        self.body_input = body_input
        self.body_output = body_output
        self.times = logical.times
        self.condition = logical.condition
        self.max_iterations = logical.max_iterations

    @property
    def iteration_bound(self) -> int:
        if self.times is not None:
            return self.times
        return self.max_iterations

    def describe(self) -> str:
        return (
            f"{self.name}[{self.kind}]"
            f"(iterations<={self.iteration_bound}, body_ops={len(self.body.graph)})"
        )
