"""Columnar-native batch kernels: compute directly on column buffers.

PR 4's :class:`~repro.core.channels.ColumnarChannel` made the *transport*
columnar — numeric hand-offs travel as struct-of-arrays ``array``
buffers — but every consumer still paid ``columnar.egest`` to
materialise row tuples before computing.  This module makes the column
format a *compute substrate* (the Shark playbook: a columnar memory
store the engine operates on in place):

* :class:`ColumnarBatch` — the native dataset form of a columnar
  hand-off *inside* an atom: the same ``'q'``/``'d'`` buffers, plus just
  enough sequence protocol (iteration, ``len``, slicing) that any
  operator without a native kernel transparently falls back to rows.
* eligibility introspection — ``operator.itemgetter`` projections,
  single-column predicates (:class:`ColumnPredicate` or a bare
  ``itemgetter(i)`` truthiness test), single-column keys, and declared
  columnwise reducers (:class:`ColumnwiseReduce`) are recognised
  statically, which is what the executor's elide gate and the
  ``repro explain`` boundary report both consult.
* native kernels — projection (zero-copy buffer selection), filtering
  (one mask pass + ``itertools.compress`` per column), columnwise
  reduce-by sweeps, and hash-join/group-by/reduce-by *key builds* that
  read the key column buffer instead of calling ``key(row)`` per row.

**Determinism contract.**  Exactly like the PR 4 batch kernels, the
columnar-native path changes *wall time only*: outputs are
byte-identical, virtual charges identical, and the ledger sequence
differs from the egest-per-consumer path only by the zero-cost
``columnar.elide`` entries the executor appends at elided boundaries
(the boundary's virtual ``columnar.egest`` price is still charged —
virtual time prices the hand-off, the *real* row materialisation is
what gets skipped).  ``REPRO_NO_KERNELS=1`` swaps the C-loop variants
for per-element Python loops over the same buffers without changing
the elision decisions, so the datapath-equivalence suites hold under
the ``REPRO_COLUMNAR`` × ``REPRO_NO_KERNELS`` cross-product.
"""

from __future__ import annotations

import array
from itertools import compress
from operator import itemgetter
from typing import Any, Callable, Iterator, Sequence

from repro.core.physical.compiled import kernels_enabled, note_kernel

__all__ = [
    "ColumnarBatch",
    "ColumnPredicate",
    "ColumnwiseReduce",
    "analyze_boundaries",
    "can_elide",
    "column_predicate",
    "consume_decision",
    "key_column",
    "native_filter",
    "native_map",
    "native_reduce_by",
    "predicate_spec",
    "projection_indices",
    "run_fused",
]


class ColumnarBatch:
    """A struct-of-arrays dataset flowing between operators in an atom.

    Holds the same ``array('q')``/``array('d')`` buffers a
    :class:`~repro.core.channels.ColumnarChannel` holds; ``scalar``
    batches carry bare numbers in a single column, tuple batches one
    buffer per tuple position.  Immutable by convention: native kernels
    share buffers zero-copy (projection) or build fresh ones (filter),
    never mutate in place.

    The sequence protocol below is the universal fallback: any operator
    without a columnar kernel can iterate, ``len()``, index or slice a
    batch and observe exactly the rows the egested channel would have
    produced — which is what makes mid-chain ineligibility (an operator
    kind without a native kernel, a projection that widens past the
    layout) safe rather than wrong.
    """

    #: duck-type marker checked by the compiled helpers (avoids an
    #: import cycle with :mod:`repro.core.physical.compiled`)
    is_columnar_batch = True

    __slots__ = ("columns", "scalar", "_card", "_rows")

    def __init__(
        self, columns: list[array.array], scalar: bool, card: int
    ):
        self.columns = columns
        self.scalar = scalar
        self._card = card
        self._rows: list[Any] | None = None

    @property
    def width(self) -> int:
        """Number of columns (1 for scalar layouts)."""
        return len(self.columns)

    def column(self, index: int) -> array.array:
        """One packed column buffer."""
        return self.columns[index]

    def rows(self) -> list[Any]:
        """Materialise (and cache) the row view — the egest fallback."""
        if self._rows is None:
            if self.scalar:
                self._rows = list(self.columns[0])
            else:
                self._rows = list(zip(*self.columns))
        return self._rows

    def __len__(self) -> int:
        return self._card

    def __iter__(self) -> Iterator[Any]:
        if self.scalar:
            # Scalar sweeps read the buffer directly — no row list.
            return iter(self.columns[0])
        return iter(self.rows())

    def __getitem__(self, item: Any) -> Any:
        return self.rows()[item]

    def __repr__(self) -> str:
        layout = "scalar" if self.scalar else f"width={self.width}"
        return f"ColumnarBatch(n={self._card}, {layout})"


# ----------------------------------------------------------------------
# declared columnar-eligible UDF shapes
# ----------------------------------------------------------------------
class ColumnPredicate:
    """A declared single-column filter predicate.

    Row mode applies ``fn(row[index])`` per quantum; columnar mode maps
    ``fn`` over the column buffer in one pass.  ``fn`` should be cheap
    and side-effect free (a bound C method like ``(0).__lt__`` keeps the
    whole mask pass in C).
    """

    __slots__ = ("index", "fn")

    def __init__(self, index: int, fn: Callable[[Any], Any]):
        self.index = index
        self.fn = fn

    def __call__(self, row: Any) -> Any:
        return self.fn(row[self.index])

    def __repr__(self) -> str:
        return f"ColumnPredicate(col={self.index}, fn={self.fn!r})"


def column_predicate(index: int, fn: Callable[[Any], Any]) -> ColumnPredicate:
    """Declare a single-column predicate (columnar-eligible filter)."""
    return ColumnPredicate(index, fn)


#: binary combines a ColumnwiseReduce may apply per value column
_COMBINES: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "min": min,
    "max": max,
}


class ColumnwiseReduce:
    """A declared columnwise reducer: one combine rule per column.

    ``spec`` names, per tuple position, either ``"key"`` (kept from the
    first quantum of the group — the usual reduce-by-key contract) or a
    combine from ``sum``/``min``/``max``.  Row mode folds tuples
    pairwise; the columnar sweep in :func:`native_reduce_by` updates
    per-column accumulators straight from the buffers, applying the
    identical combine in the identical left-fold order — byte-identical
    results, no row tuples until the (small) output is assembled.
    """

    __slots__ = ("spec",)

    def __init__(self, spec: Sequence[str]):
        for entry in spec:
            if entry != "key" and entry not in _COMBINES:
                raise ValueError(
                    f"unknown columnwise combine {entry!r}; "
                    f"expected 'key' or one of {sorted(_COMBINES)}"
                )
        self.spec = tuple(spec)

    def __call__(self, a: Any, b: Any) -> Any:
        return tuple(
            a[j] if rule == "key" else _COMBINES[rule](a[j], b[j])
            for j, rule in enumerate(self.spec)
        )

    def __repr__(self) -> str:
        return f"ColumnwiseReduce({self.spec!r})"


# ----------------------------------------------------------------------
# eligibility introspection
# ----------------------------------------------------------------------
def projection_indices(udf: Any) -> tuple[int, ...] | None:
    """Column indices of an ``operator.itemgetter`` projection, or None.

    ``itemgetter.__reduce__()`` exposes the captured indices without
    calling the getter; only all-``int`` index sets qualify (slices and
    string keys have no column meaning).
    """
    if type(udf) is not itemgetter:
        return None
    _, indices = udf.__reduce__()
    if all(type(i) is int for i in indices):
        return tuple(indices)
    return None


def predicate_spec(predicate: Any) -> tuple[int, Callable | None] | None:
    """``(column, fn-or-None)`` for a single-column predicate, or None.

    ``None`` for ``fn`` means plain truthiness of the column value (a
    bare ``itemgetter(i)`` used as a predicate).
    """
    if isinstance(predicate, ColumnPredicate):
        return (predicate.index, predicate.fn)
    indices = projection_indices(predicate)
    if indices is not None and len(indices) == 1:
        return (indices[0], None)
    return None


def key_column(key: Any) -> int | None:
    """The single column index a key UDF reads, or None."""
    indices = projection_indices(key)
    if indices is not None and len(indices) == 1:
        return indices[0]
    return None


def _in_range(indices: Sequence[int], width: int) -> bool:
    return all(-width <= i < width for i in indices)


def can_elide(op: Any, slot: int, width: int, scalar: bool) -> bool:
    """Whether ``op`` (input ``slot``) consumes this layout natively.

    The executor's elide gate: called per consuming hop with the
    channel's actual layout, so the decision is deterministic and
    independent of the kernel kill switch (elision changes wall time
    only; the kill switch changes loop style only).
    """
    kind = op.kind
    if kind == "map":
        indices = projection_indices(op.udf)
        return (
            indices is not None and not scalar and _in_range(indices, width)
        )
    if kind == "filter":
        spec = predicate_spec(op.predicate)
        return spec is not None and not scalar and _in_range((spec[0],), width)
    if kind == "fused.narrow":
        if op.source_stage is not None:
            return False
        stages = op.narrow_stages
        return bool(stages) and can_elide(stages[0], 0, width, scalar)
    if kind in ("reduceby.hash", "groupby.hash"):
        index = key_column(op.key)
        return index is not None and not scalar and _in_range((index,), width)
    if kind == "reduce.global":
        return scalar
    if kind in ("join.hash", "join.broadcast"):
        key = op.left_key if slot == 0 else op.right_key
        index = key_column(key)
        return index is not None and not scalar and _in_range((index,), width)
    return False


def consume_decision(op: Any, slot: int = 0) -> tuple[bool, str]:
    """Static (layout-independent) eligibility of ``op``, with a reason.

    The ``repro explain`` boundary report renders these; the runtime
    gate (:func:`can_elide`) re-checks against the actual layout, so a
    statically eligible boundary may still egest when the data turns
    out scalar/too narrow — the report carries that caveat.
    """
    kind = op.kind
    if kind == "map":
        if projection_indices(op.udf) is None:
            return False, "map udf is not an itemgetter projection"
        return True, "itemgetter projection selects column buffers"
    if kind == "filter":
        spec = predicate_spec(op.predicate)
        if spec is None:
            return (
                False,
                "filter predicate is not single-column "
                "(ColumnPredicate or itemgetter)",
            )
        return True, f"single-column predicate on col {spec[0]}"
    if kind == "fused.narrow":
        if op.source_stage is not None:
            return False, "fused chain streams from a source head"
        stages = op.narrow_stages
        if not stages:
            return False, "empty fused pipeline"
        ok, why = consume_decision(stages[0])
        if not ok:
            return False, f"fused head ineligible: {why}"
        prefix = 0
        for stage in stages:
            if consume_decision(stage)[0]:
                prefix += 1
            else:
                break
        return True, f"native prefix: {prefix}/{len(stages)} fused stage(s)"
    if kind in ("reduceby.hash", "groupby.hash"):
        index = key_column(op.key)
        if index is None:
            return False, f"{kind} key is not a single-column itemgetter"
        if kind == "reduceby.hash" and isinstance(
            op.reducer, ColumnwiseReduce
        ):
            return True, f"columnwise sweep keyed on col {index}"
        return True, f"native key build on col {index}"
    if kind == "reduce.global":
        return True, "global reduce sweeps scalar buffers (scalar layouts)"
    if kind in ("join.hash", "join.broadcast"):
        key = op.left_key if slot == 0 else op.right_key
        index = key_column(key)
        if index is None:
            side = "left" if slot == 0 else "right"
            return False, f"join {side} key is not a single-column itemgetter"
        return True, f"native key build on col {index}"
    if kind == "sink.collect":
        return False, "collect sink returns rows to the caller"
    return False, f"no columnar-native kernel for kind {kind!r}"


# ----------------------------------------------------------------------
# native kernels
# ----------------------------------------------------------------------
def native_map(udf: Any, batch: ColumnarBatch) -> ColumnarBatch | None:
    """Apply an itemgetter projection by selecting buffers; None if
    ineligible for this batch's layout (caller falls back to rows).

    Compiled mode shares the selected buffers zero-copy — a projection
    over 400k rows is a handful of pointer copies.  The interpreted
    fallback rebuilds each selected column per element; same values,
    wall time only.
    """
    indices = projection_indices(udf)
    if indices is None or batch.scalar or not _in_range(indices, batch.width):
        return None
    card = len(batch)
    if kernels_enabled():
        note_kernel("map.columnar")
        if len(indices) == 1:
            return ColumnarBatch([batch.columns[indices[0]]], True, card)
        return ColumnarBatch(
            [batch.columns[i] for i in indices], False, card
        )
    if len(indices) == 1:
        source = batch.columns[indices[0]]
        return ColumnarBatch(
            [array.array(source.typecode, [v for v in source])], True, card
        )
    return ColumnarBatch(
        [
            array.array(batch.columns[i].typecode, [v for v in batch.columns[i]])
            for i in indices
        ],
        False,
        card,
    )


def native_filter(
    predicate: Any, batch: ColumnarBatch
) -> ColumnarBatch | None:
    """Filter via one mask pass over the predicate column; None if
    ineligible for this layout.

    Compiled mode builds the mask with ``map(fn, column)`` (or reuses
    the column itself for truthiness) and compresses every buffer with
    ``itertools.compress`` — no row tuples anywhere.  The interpreted
    fallback evaluates the mask and rebuilds columns per element.
    """
    spec = predicate_spec(predicate)
    if spec is None or batch.scalar or not _in_range((spec[0],), batch.width):
        return None
    index, fn = spec
    column = batch.columns[index]
    if kernels_enabled():
        note_kernel("filter.columnar")
        flags: Sequence[Any] = (
            column if fn is None else list(map(fn, column))
        )
        out = [
            array.array(c.typecode, compress(c, flags))
            for c in batch.columns
        ]
    else:
        flags = (
            [bool(v) for v in column]
            if fn is None
            else [bool(fn(v)) for v in column]
        )
        out = [
            array.array(
                c.typecode, [v for v, keep in zip(c, flags) if keep]
            )
            for c in batch.columns
        ]
    return ColumnarBatch(out, False, len(out[0]))


def native_reduce_by(
    batch: ColumnarBatch, key: Any, reducer: Any
) -> list[Any] | ColumnarBatch | None:
    """Columnwise reduce-by sweep over the buffers; None if ineligible.

    Requires a single-column key and a :class:`ColumnwiseReduce`
    reducer.  Accumulators live per column in plain Python numbers (so
    int64 overflow behaves exactly like row mode — unbounded Python
    ints), updated straight from the buffers in row order.  The output
    (one quantum per distinct key, first-appearance order) is assembled
    as a batch when it still fits the int64/double layout, rows
    otherwise — mirroring ``ColumnarChannel.from_rows`` rejection.
    """
    index = key_column(key)
    if (
        index is None
        or batch.scalar
        or not _in_range((index,), batch.width)
        or not isinstance(reducer, ColumnwiseReduce)
        or len(reducer.spec) != batch.width
    ):
        return None
    note_kernel("reduceby.hash.columnar")
    spec = reducer.spec
    columns = batch.columns
    combines = [
        None if rule == "key" else _COMBINES[rule] for rule in spec
    ]
    accumulators: dict[Any, list[Any]] = {}
    key_col = columns[index]
    width = batch.width
    for position, group_key in enumerate(key_col):
        acc = accumulators.get(group_key)
        if acc is None:
            accumulators[group_key] = [
                columns[j][position] for j in range(width)
            ]
        else:
            for j, combine in enumerate(combines):
                if combine is not None:
                    acc[j] = combine(acc[j], columns[j][position])
    if not accumulators:
        return []
    grouped = list(accumulators.values())
    try:
        out = [
            array.array(
                columns[j].typecode, [acc[j] for acc in grouped]
            )
            for j in range(width)
        ]
    except (OverflowError, TypeError):
        # Combined values escaped the int64/double layout: fall back to
        # rows, exactly like from_rows would reject them at a boundary.
        return [tuple(acc) for acc in grouped]
    return ColumnarBatch(out, False, len(grouped))


def native_keys(side: Any, key: Any) -> tuple[Any, Sequence[Any]] | None:
    """``(key_column, rows)`` for a batch with a single-column key.

    The *key build* of hash join / group-by / reduce-by: instead of one
    ``map(key, rows)`` pass constructing and probing row tuples, the key
    stream is the packed column buffer itself.  None when the side is
    not a batch or the key reads more than one column.
    """
    if not getattr(side, "is_columnar_batch", False):
        return None
    index = key_column(key)
    if index is None or side.scalar or not _in_range((index,), side.width):
        return None
    return side.columns[index], side.rows()


# ----------------------------------------------------------------------
# fused pipelines over batches
# ----------------------------------------------------------------------
def run_fused(pipeline: Any, batch: ColumnarBatch) -> Any:
    """Run a fused narrow chain starting from a columnar batch.

    Executes the leading run of projection/filter stages natively
    (layout re-checked per stage — projections change the width), then
    materialises rows once and hands the remainder to the ordinary
    fused runner.  Returns a batch when every stage ran natively, rows
    otherwise.  Outputs are byte-identical to the row path in both
    kill-switch modes.
    """
    from repro.core.physical.fusion import compose_stages

    stages = pipeline.narrow_stages
    current: Any = batch
    native_stages = 0
    for position, stage in enumerate(stages):
        out = None
        if stage.kind == "map":
            out = native_map(stage.udf, current)
        elif stage.kind == "filter":
            out = native_filter(stage.predicate, current)
        if out is None:
            rows = current.rows()
            result = compose_stages(stages[position:])(rows)
            if native_stages and kernels_enabled():
                note_kernel("fused.columnar")
            return result
        current = out
        native_stages += 1
    if kernels_enabled():
        note_kernel("fused.columnar")
    return current


# ----------------------------------------------------------------------
# static boundary analysis (enumerator + repro explain)
# ----------------------------------------------------------------------
def analyze_boundaries(execution: Any) -> list[dict[str, Any]]:
    """Per-boundary columnar decisions for an execution plan.

    One record per channel hand-off the executor will price: task-atom
    external inputs and loop-state recirculations.  ``eligible`` is the
    *static* consumer-side verdict (runtime packing additionally
    requires numerically eligible data); ``reason`` explains either the
    native kernel that will consume in place or why the boundary must
    egest rows.  The enumerator attaches this to the plan; ``repro
    explain`` renders it and prices it with profiled kernel rates.
    """
    from repro.core.execution.plan import LoopAtom

    records: list[dict[str, Any]] = []

    def walk(plan: Any) -> None:
        for atom in plan.atoms:
            if isinstance(atom, LoopAtom):
                repeat = atom.repeat
                if repeat.condition is not None:
                    eligible, reason = (
                        False,
                        "loop condition consumes row state",
                    )
                else:
                    eligible, reason = _loop_state_decision(atom)
                # price the hop by what actually consumes the state: the
                # first body operator reading the bound loop input
                state_consumers = loop_state_consumers(atom)
                consumer_kind = (
                    state_consumers[0][0].kind
                    if state_consumers
                    else "source.loopinput"
                )
                records.append(
                    {
                        "boundary": "loop-state",
                        "atom": atom.id,
                        "producer": repeat.body_output.id,
                        "consumer": repeat.body_input.id,
                        "consumer_kind": consumer_kind,
                        "eligible": eligible,
                        "reason": reason,
                        "card": plan.estimates.get(repeat.id),
                    }
                )
                walk(atom.body_plan)
                continue
            ops_by_id = {op.id: op for op in atom.fragment.operators}
            for (consumer_id, slot), producer_id in sorted(
                atom.external_inputs.items()
            ):
                consumer = ops_by_id.get(consumer_id)
                if consumer is None:  # pragma: no cover - defensive
                    continue
                eligible, reason = consume_decision(consumer, slot)
                records.append(
                    {
                        "boundary": "channel",
                        "atom": atom.id,
                        "producer": producer_id,
                        "consumer": consumer_id,
                        "consumer_kind": consumer.kind,
                        "slot": slot,
                        "eligible": eligible,
                        "reason": reason,
                        "card": plan.estimates.get(producer_id),
                    }
                )

    walk(execution)
    return records


def _loop_state_decision(atom: Any) -> tuple[bool, str]:
    """Static decision for a loop's per-iteration state hand-off."""
    body_input_id = atom.repeat.body_input.id
    decisions: list[tuple[bool, str]] = []
    for body_atom in atom.body_plan.atoms:
        fragment = getattr(body_atom, "fragment", None)
        if fragment is None:
            return False, "nested loop body"
        for op in fragment.operators:
            if op.kind == "source.loopinput" and op.id == body_input_id:
                for consumer in fragment.consumers_of(op):
                    for slot, producer in enumerate(
                        fragment.inputs_of(consumer)
                    ):
                        if producer is op:
                            decisions.append(
                                consume_decision(consumer, slot)
                            )
    if not decisions:
        return False, "loop state has no in-fragment consumer"
    for eligible, reason in decisions:
        if not eligible:
            return False, reason
    return True, "; ".join(sorted({r for _, r in decisions}))


def loop_state_consumers(atom: Any) -> list[tuple[Any, int]] | None:
    """The ``(operator, slot)`` pairs consuming a loop's bound state.

    None when the state must stay in rows (a loop condition reads it,
    or a nested loop makes the consumer set unanalysable) — the
    executor then pulls rows every iteration.
    """
    if atom.repeat.condition is not None:
        return None
    body_input_id = atom.repeat.body_input.id
    consumers: list[tuple[Any, int]] = []
    for body_atom in atom.body_plan.atoms:
        fragment = getattr(body_atom, "fragment", None)
        if fragment is None:
            return None
        for op in fragment.operators:
            if op.kind == "source.loopinput" and op.id == body_input_id:
                for consumer in fragment.consumers_of(op):
                    for slot, producer in enumerate(
                        fragment.inputs_of(consumer)
                    ):
                        if producer is op:
                            consumers.append((consumer, slot))
    return consumers
