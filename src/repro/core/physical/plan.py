"""Physical plans: platform-independent plans produced by the application
optimizer and consumed by the multi-platform task optimizer."""

from __future__ import annotations

from typing import Sequence

from repro.core.dag import OperatorGraph
from repro.core.physical.operators import PCollectSink, PhysicalOperator


class PhysicalPlan:
    """A DAG of physical operators.

    A physical plan expresses "algorithmic needs only, without being tied
    to a particular processing platform" (paper §2).  Operators may carry
    ``alternates`` — algorithmic variants the enumerator can substitute.
    """

    def __init__(self) -> None:
        self.graph: OperatorGraph[PhysicalOperator] = OperatorGraph()

    def add(
        self, operator: PhysicalOperator, inputs: Sequence[PhysicalOperator] = ()
    ) -> PhysicalOperator:
        """Add ``operator`` wired to ``inputs``; returns it for chaining."""
        return self.graph.add(operator, inputs)

    def validate(self) -> None:
        """Check the DAG invariants."""
        self.graph.validate()

    @property
    def sinks(self) -> tuple[PhysicalOperator, ...]:
        return self.graph.sinks

    def collect_sinks(self) -> tuple[PCollectSink, ...]:
        """The sinks whose content is returned to the caller."""
        return tuple(op for op in self.graph if isinstance(op, PCollectSink))

    def substitute(self, old: PhysicalOperator, new: PhysicalOperator) -> None:
        """Swap ``old`` for an algorithmic variant ``new`` in place.

        The variant must have the same arity; wiring is transferred.  Used
        by the enumerator once it has committed to a cheaper variant.
        """
        self.graph.replace_node(old, new)

    def explain(self) -> str:
        """Human-readable rendering of the plan DAG."""
        return self.graph.explain()

    def __len__(self) -> int:
        return len(self.graph)
