"""Compiled batch execution helpers — the data path's fast lane.

The interpreted data path pays Python bytecode dispatch per quantum per
operator (one list comprehension per stage).  The helpers here route the
same work through the CPython C loop instead — ``map()`` / ``filter()`` /
``itertools.chain.from_iterable`` — which is the stdlib equivalent of
compiled operator kernels: one fused pass, no per-element frame setup,
and UDFs that are themselves C callables (``operator.itemgetter``,
``operator.methodcaller``, builtins) never enter the interpreter at all.

**Determinism contract.**  Batch kernels change *wall time only*.  Every
fast path in this module and its callers produces byte-identical outputs,
the same virtual-time charges, and the same ledger entry sequence as the
interpreted path; plan surgery (fusion) is independent of the kill
switch, so the plan shape — and therefore the bill — never varies.

**Kill switch.**  ``REPRO_NO_KERNELS=1`` disables every compiled fast
path at execution time and falls back to the interpreted per-quantum
loops.  The equivalence test suite runs every seeded plan in both modes
and asserts the contract above.
"""

from __future__ import annotations

import os
import threading
from itertools import chain
from typing import Any, Callable, Iterable

#: environment kill switch: truthy value disables all compiled kernels
KILL_SWITCH = "REPRO_NO_KERNELS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: thread-local scratch slot recording which batch kernel last engaged
#: (drained onto the enclosing operator span by the atom interpreter)
_note = threading.local()


def kernels_enabled() -> bool:
    """Whether compiled batch kernels are active (the default)."""
    return os.environ.get(KILL_SWITCH, "").strip().lower() not in _TRUTHY


def note_kernel(name: str) -> None:
    """Record that batch kernel ``name`` ran (span attribution only)."""
    _note.value = name


def drain_kernel_note() -> str | None:
    """Read-and-clear the last batch-kernel note for this thread."""
    value = getattr(_note, "value", None)
    _note.value = None
    return value


#: lazily bound columnar module (imported on first batch sighting; the
#: columnar module imports this one, so a top-level import would cycle)
_columnar = None


def _columnar_mod():
    global _columnar
    if _columnar is None:
        from repro.core.physical import columnar

        _columnar = columnar
    return _columnar


# ----------------------------------------------------------------------
# per-quantum operator shapes, batch-at-a-time
# ----------------------------------------------------------------------
def batch_map(udf: Callable[[Any], Any], data: Iterable[Any]) -> Any:
    """``[udf(q) for q in data]`` through the C loop.

    A :class:`~repro.core.physical.columnar.ColumnarBatch` input with an
    itemgetter projection stays columnar — buffers are selected, not
    iterated — and the columnar result flows onward.  Ineligible UDFs
    materialise the batch's row view and take the ordinary path.
    """
    if getattr(data, "is_columnar_batch", False):
        native = _columnar_mod().native_map(udf, data)
        if native is not None:
            return native
        data = data.rows()
    if kernels_enabled():
        note_kernel("map.batch")
        return list(map(udf, data))
    return [udf(q) for q in data]


def batch_filter(
    predicate: Callable[[Any], Any], data: Iterable[Any]
) -> Any:
    """``[q for q in data if predicate(q)]`` through the C loop.

    Single-column predicates over a columnar batch run as one mask pass
    over the predicate column; ineligible predicates fall back to rows.
    """
    if getattr(data, "is_columnar_batch", False):
        native = _columnar_mod().native_filter(predicate, data)
        if native is not None:
            return native
        data = data.rows()
    if kernels_enabled():
        note_kernel("filter.batch")
        return list(filter(predicate, data))
    return [q for q in data if predicate(q)]


def batch_flatmap(
    udf: Callable[[Any], Iterable[Any]], data: Iterable[Any]
) -> list[Any]:
    """``[out for q in data for out in udf(q)]`` through the C loop.

    Flat-map outputs are inherently ragged, so a columnar batch input
    always materialises its row view first.
    """
    if getattr(data, "is_columnar_batch", False):
        data = data.rows()
    if kernels_enabled():
        note_kernel("flatmap.batch")
        return list(chain.from_iterable(map(udf, data)))
    return [out for q in data for out in udf(q)]
