"""Narrow-operator fusion — a platform-layer optimization (paper §4.3).

"Once at a target processing platform, we envision a third optimization
phase that uses plugged-in platform-specific optimization tools" — the
paper names Starfish for Hadoop.  The analogue here: platforms that
execute per-quantum operator chains (map / filter / flat-map) can fuse a
chain inside a task atom into one :class:`PFusedPipeline`, paying a
single per-operator overhead and making a single pass over the data —
exactly what Spark's stage pipelining and a compiler like Starfish/Tungsten
buy on the real engines.

The rewrite is *plan surgery inside one atom*: results are unchanged
(the composed function is applied quantum-wise in stage order), only the
overhead accounting and pass count drop.  Platforms opt in via
:meth:`repro.platforms.base.Platform.optimize_atom`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.execution.plan import TaskAtom
from repro.core.logical.operators import CostHints
from repro.core.optimizer.cost import OperatorCostInput
from repro.core.optimizer.workunits import register_work_units
from repro.core.physical.operators import (
    PFilter,
    PFlatMap,
    PMap,
    PhysicalOperator,
)

#: operator kinds fusable into a single per-quantum pass
FUSABLE_KINDS = frozenset({"map", "filter", "flatmap", "fused.narrow"})


class PFusedPipeline(PhysicalOperator):
    """A chain of narrow per-quantum operators executed in one pass."""

    kind = "fused.narrow"

    def __init__(self, stages: list[PhysicalOperator]):
        super().__init__(None, "PFusedPipeline")
        flattened: list[PhysicalOperator] = []
        for stage in stages:
            if isinstance(stage, PFusedPipeline):
                flattened.extend(stage.stages)
            else:
                flattened.append(stage)
        self.stages = flattened
        self._hints = CostHints(
            udf_load=sum(stage.hints.udf_load for stage in self.stages)
        )

    @property
    def hints(self) -> CostHints:
        return self._hints

    def describe(self) -> str:
        inner = "+".join(stage.kind for stage in self.stages)
        return f"{self.name}[{inner}]"


def compose_stages(
    stages: list[PhysicalOperator],
) -> Callable[[list[Any]], list[Any]]:
    """Build the one-pass function applying every stage in order."""

    steps: list[tuple[str, Callable]] = []
    for stage in stages:
        if isinstance(stage, PMap):
            steps.append(("map", stage.udf))
        elif isinstance(stage, PFilter):
            steps.append(("filter", stage.predicate))
        elif isinstance(stage, PFlatMap):
            steps.append(("flatmap", stage.udf))
        else:  # pragma: no cover - guarded by FUSABLE_KINDS
            raise TypeError(f"not fusable: {stage!r}")

    def run(data: list[Any]) -> list[Any]:
        current = data
        for kind, fn in steps:
            if kind == "map":
                current = [fn(q) for q in current]
            elif kind == "filter":
                current = [q for q in current if fn(q)]
            else:
                current = [out for q in current for out in fn(q)]
        return current

    return run


def fuse_narrow_chains(atom: TaskAtom) -> int:
    """Fuse fusable chains inside ``atom``'s fragment; returns #rewrites.

    A pair (producer → consumer) fuses when both are fusable kinds, the
    producer feeds only that consumer inside the atom, and **neither**
    operator's output is needed outside the atom — channels between atoms
    are keyed by operator id, so externally visible operators must keep
    their identity.
    """
    fused = 0
    graph = atom.fragment
    changed = True
    while changed:
        changed = False
        for consumer in graph.operators:
            if consumer.kind not in FUSABLE_KINDS:
                continue
            producers = graph.inputs_of(consumer)
            if len(producers) != 1:
                continue
            (producer,) = producers
            if producer.kind not in FUSABLE_KINDS:
                continue
            if producer.id in atom.output_ids or consumer.id in atom.output_ids:
                continue
            if len(graph.consumers_of(producer)) != 1:
                continue
            pipeline = PFusedPipeline(
                (producer.stages if isinstance(producer, PFusedPipeline)
                 else [producer])
                + (consumer.stages if isinstance(consumer, PFusedPipeline)
                   else [consumer])
            )
            # Rewire: pipeline takes the producer's input, serves the
            # consumer's consumers.
            grand_producers = list(graph.inputs_of(producer))
            graph.replace_node(producer, pipeline)
            # pipeline currently inherits producer's wiring; splice out
            # the consumer.
            graph.remove_unary(consumer)
            _ = grand_producers  # wiring transferred by replace_node
            # Move bookkeeping from the removed operators to the pipeline.
            for old in (producer, consumer):
                for (op_id, slot), source in list(atom.external_inputs.items()):
                    if op_id == old.id:
                        del atom.external_inputs[(op_id, slot)]
                        atom.external_inputs[(pipeline.id, slot)] = source
                if old.id in atom.output_ids:
                    atom.output_ids.discard(old.id)
                    atom.output_ids.add(pipeline.id)
            fused += 1
            changed = True
            break
    return fused


def _fused_work_units(cost_input: OperatorCostInput) -> float:
    n = cost_input.input_cards[0] if cost_input.input_cards else 0.0
    return n * cost_input.udf_load + 0.1 * cost_input.output_card


register_work_units("fused.narrow", _fused_work_units)
