"""Narrow-operator fusion — a platform-layer optimization (paper §4.3).

"Once at a target processing platform, we envision a third optimization
phase that uses plugged-in platform-specific optimization tools" — the
paper names Starfish for Hadoop.  The analogue here: platforms that
execute per-quantum operator chains (map / filter / flat-map) can fuse a
chain inside a task atom into one :class:`PFusedPipeline`, paying a
single per-operator overhead and making a single pass over the data —
exactly what Spark's stage pipelining and a compiler like Starfish/Tungsten
buy on the real engines.

The rewrite is *plan surgery inside one atom*: results are unchanged
(the composed function is applied quantum-wise in stage order), only the
overhead accounting and pass count drop.  Platforms opt in via
:meth:`repro.platforms.base.Platform.optimize_atom`.

Two execution modes back a fused chain (see
:mod:`repro.core.physical.compiled`):

* **compiled** (default) — the stage list compiles once into a nested
  iterator stack (``map``/``filter``/``chain.from_iterable``) that makes
  a *single lazy pass* over the input with no per-stage intermediate
  lists and no Python-level loop; UDFs that are C callables
  (``operator.itemgetter``, builtins) keep the whole pass in C.
* **interpreted** (``REPRO_NO_KERNELS=1``) — the historical per-stage
  list loops, kept as the equivalence baseline.

Both modes produce byte-identical outputs; the plan surgery — and hence
the virtual bill — is independent of the mode.

Platforms that stream (java, flink) may additionally fuse a
:data:`FUSABLE_SOURCE_KINDS` source into the head of a chain
(``fuse_sources=True``): a text-file source then *streams* lines into
the first fused stage instead of materialising the whole file first.
"""

from __future__ import annotations

import operator as _operator
from itertools import chain
from typing import Any, Callable, Iterable, Iterator

from repro.core.execution.plan import TaskAtom
from repro.core.logical.operators import CostHints
from repro.core.optimizer.cost import OperatorCostInput
from repro.core.optimizer.workunits import register_work_units
from repro.core.physical.compiled import kernels_enabled, note_kernel
from repro.core.physical.operators import (
    PFilter,
    PFlatMap,
    PMap,
    PhysicalOperator,
    PTextFileSource,
)

#: operator kinds fusable into a single per-quantum pass
FUSABLE_KINDS = frozenset({"map", "filter", "flatmap", "fused.narrow"})

#: source kinds that may stream into the head of a fused chain
FUSABLE_SOURCE_KINDS = frozenset({"source.textfile"})

#: C-level newline strip used by the streaming text-file head
_RSTRIP_NEWLINE = _operator.methodcaller("rstrip", "\n")


class PFusedPipeline(PhysicalOperator):
    """A chain of narrow per-quantum operators executed in one pass."""

    kind = "fused.narrow"

    def __init__(self, stages: list[PhysicalOperator]):
        super().__init__(None, "PFusedPipeline")
        flattened: list[PhysicalOperator] = []
        for stage in stages:
            if isinstance(stage, PFusedPipeline):
                flattened.extend(stage.stages)
            else:
                flattened.append(stage)
        self.stages = flattened
        if flattened and flattened[0].kind in FUSABLE_SOURCE_KINDS:
            # The chain starts at a fused source: the pipeline *is* the
            # source and consumes no upstream input.
            self.num_inputs = 0
        self._hints = CostHints(
            udf_load=sum(stage.hints.udf_load for stage in self.narrow_stages)
        )
        #: compilation cache: (kernels_enabled, compiled runner)
        self._compiled: tuple[bool, Callable[[Iterable[Any]], list[Any]]] | None
        self._compiled = None

    @property
    def source_stage(self) -> PhysicalOperator | None:
        """The fused source head, when the chain starts at one."""
        if self.stages and self.stages[0].kind in FUSABLE_SOURCE_KINDS:
            return self.stages[0]
        return None

    @property
    def narrow_stages(self) -> list[PhysicalOperator]:
        """The per-quantum stages (everything after a fused source head)."""
        if self.source_stage is not None:
            return self.stages[1:]
        return self.stages

    @property
    def hints(self) -> CostHints:
        return self._hints

    @property
    def shape(self) -> str:
        """Stage-kind signature, e.g. ``"map+filter+flatmap"``."""
        return "+".join(stage.kind for stage in self.stages)

    def describe(self) -> str:
        return f"{self.name}[{self.shape}]"


# ----------------------------------------------------------------------
# pipeline compilation
# ----------------------------------------------------------------------
def _steps_of(
    stages: list[PhysicalOperator],
) -> list[tuple[str, Callable]]:
    steps: list[tuple[str, Callable]] = []
    for stage in stages:
        if isinstance(stage, PMap):
            steps.append(("map", stage.udf))
        elif isinstance(stage, PFilter):
            steps.append(("filter", stage.predicate))
        elif isinstance(stage, PFlatMap):
            steps.append(("flatmap", stage.udf))
        else:  # pragma: no cover - guarded by FUSABLE_KINDS
            raise TypeError(f"not fusable: {stage!r}")
    return steps


def _compiled_stack(
    steps: list[tuple[str, Callable]], current: Iterable[Any]
) -> Iterator[Any]:
    """Nest the C-level iterators: one lazy pass, zero intermediates."""
    for kind, fn in steps:
        if kind == "map":
            current = map(fn, current)
        elif kind == "filter":
            current = filter(fn, current)
        else:
            current = chain.from_iterable(map(fn, current))
    return iter(current)


def _interpreted_run(
    steps: list[tuple[str, Callable]],
) -> Callable[[Iterable[Any]], list[Any]]:
    """The historical per-stage loops: one intermediate list per stage."""

    def run(data: Iterable[Any]) -> list[Any]:
        current = data
        for kind, fn in steps:
            if kind == "map":
                current = [fn(q) for q in current]
            elif kind == "filter":
                current = [q for q in current if fn(q)]
            else:
                current = [out for q in current for out in fn(q)]
        return current if isinstance(current, list) else list(current)

    return run


def compose_stages(
    stages: list[PhysicalOperator],
) -> Callable[[Iterable[Any]], list[Any]]:
    """Build the one-pass function applying every stage in order.

    Compiled mode returns a single-pass closure over a nested iterator
    stack; the kill switch (``REPRO_NO_KERNELS=1``) returns the
    interpreted per-stage loops instead.  Outputs are identical.
    """
    steps = _steps_of(stages)
    if not kernels_enabled():
        return _interpreted_run(steps)

    def run(data: Iterable[Any]) -> list[Any]:
        note_kernel("fused.compiled")
        return list(_compiled_stack(steps, data))

    return run


def compose_stream(
    stages: list[PhysicalOperator],
) -> Callable[[Iterable[Any]], Iterator[Any]]:
    """Lazy variant of :func:`compose_stages`: iterable in, iterator out.

    Used by streaming platforms (flink operator chaining) and by fused
    source heads, where the input should never be materialised up front.
    The interpreted fallback materialises per stage — outputs are
    identical, only the pass structure differs.
    """
    steps = _steps_of(stages)
    if not kernels_enabled():
        interpreted = _interpreted_run(steps)

        def run_interpreted(iterable: Iterable[Any]) -> Iterator[Any]:
            return iter(interpreted(list(iterable)))

        return run_interpreted

    def run(iterable: Iterable[Any]) -> Iterator[Any]:
        note_kernel("fused.compiled")
        return _compiled_stack(steps, iterable)

    return run


def pipeline_runner(
    pipeline: PFusedPipeline,
) -> Callable[[Iterable[Any]], list[Any]]:
    """The compiled runner for ``pipeline``'s narrow stages, cached.

    Compilation happens once per pipeline per kill-switch state; the
    cache is invalidated when ``REPRO_NO_KERNELS`` flips (tests toggle
    it within one process).
    """
    enabled = kernels_enabled()
    cached = pipeline._compiled
    if cached is not None and cached[0] is enabled:
        return cached[1]
    runner = compose_stages(pipeline.narrow_stages)
    pipeline._compiled = (enabled, runner)
    return runner


def iter_source(stage: PhysicalOperator) -> Iterator[Any]:
    """Stream the quanta of a fused source head, one at a time.

    For a text-file source this yields stripped lines *while reading*,
    so the first fused stage starts before the file is fully read — the
    file is never materialised as a standalone list.
    """
    if isinstance(stage, PTextFileSource):

        def lines() -> Iterator[str]:
            with open(stage.path, "r", encoding="utf-8") as handle:
                if kernels_enabled():
                    yield from map(_RSTRIP_NEWLINE, handle)
                else:
                    for line in handle:
                        yield line.rstrip("\n")

        return lines()
    raise TypeError(f"not a fusable source: {stage!r}")


# ----------------------------------------------------------------------
# plan surgery
# ----------------------------------------------------------------------
def fuse_narrow_chains(atom: TaskAtom, fuse_sources: bool = False) -> int:
    """Fuse fusable chains inside ``atom``'s fragment; returns #rewrites.

    A pair (producer → consumer) fuses when both are fusable kinds, the
    producer feeds only that consumer inside the atom, and **neither**
    operator's output is needed outside the atom — channels between atoms
    are keyed by operator id, so externally visible operators must keep
    their identity.

    With ``fuse_sources=True`` a :data:`FUSABLE_SOURCE_KINDS` source may
    additionally fuse into the head of the chain, streaming its quanta
    directly into the first narrow stage.  Platforms whose sources must
    stay standalone (e.g. the simulated Spark, whose per-partition
    workmeter pricing needs the source materialised into partitions)
    leave this off.
    """
    fused = 0
    graph = atom.fragment
    changed = True
    while changed:
        changed = False
        for consumer in graph.operators:
            if consumer.kind not in FUSABLE_KINDS:
                continue
            producers = graph.inputs_of(consumer)
            if len(producers) != 1:
                continue
            (producer,) = producers
            if producer.kind not in FUSABLE_KINDS and not (
                fuse_sources and producer.kind in FUSABLE_SOURCE_KINDS
            ):
                continue
            if producer.id in atom.output_ids or consumer.id in atom.output_ids:
                continue
            if len(graph.consumers_of(producer)) != 1:
                continue
            pipeline = PFusedPipeline(
                (producer.stages if isinstance(producer, PFusedPipeline)
                 else [producer])
                + (consumer.stages if isinstance(consumer, PFusedPipeline)
                   else [consumer])
            )
            # Rewire: pipeline takes the producer's input, serves the
            # consumer's consumers.
            grand_producers = list(graph.inputs_of(producer))
            graph.replace_node(producer, pipeline)
            # pipeline currently inherits producer's wiring; splice out
            # the consumer.
            graph.remove_unary(consumer)
            _ = grand_producers  # wiring transferred by replace_node
            # Move bookkeeping from the removed operators to the pipeline.
            for old in (producer, consumer):
                for (op_id, slot), source in list(atom.external_inputs.items()):
                    if op_id == old.id:
                        del atom.external_inputs[(op_id, slot)]
                        atom.external_inputs[(pipeline.id, slot)] = source
                if old.id in atom.output_ids:
                    atom.output_ids.discard(old.id)
                    atom.output_ids.add(pipeline.id)
            fused += 1
            changed = True
            break
    return fused


def _fused_work_units(cost_input: OperatorCostInput) -> float:
    if cost_input.input_cards:
        n = cost_input.input_cards[0]
    else:
        # Source-head pipeline: no upstream input; the stream length is
        # bounded below by what survives to the output.
        n = cost_input.output_card
    return n * cost_input.udf_load + 0.1 * cost_input.output_card


register_work_units("fused.narrow", _fused_work_units)
