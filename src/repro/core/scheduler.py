"""Dependency-aware concurrent task-atom scheduling.

The paper's Executor "schedul[es] the resulting execution plan on the
selected data processing frameworks" (§4.2).  The seed implementation ran
atoms one at a time in topological order; this module adds a *concurrent
DAG scheduler* that dispatches independent atoms onto a thread pool while
preserving — byte for byte — the virtual-time accounting, span tree,
resilience behaviour and outputs of the sequential executor.

Determinism by journal + replay
-------------------------------

Worker threads do **pure computation**: each in-flight atom runs against
a private *shard* — its own :class:`~repro.core.metrics.CostLedger`,
:class:`~repro.core.observability.spans.Tracer`,
:class:`~repro.core.observability.registry.MetricsRegistry` and health
journal — and touches no coordinator state.  The coordinator then
*replays* every stateful effect in **plan order** (atom index order):

* shard span trees are grafted into the main trace
  (:meth:`Tracer.graft`), advancing the virtual clock exactly as live
  charging would have;
* shard ledgers are merged entry-by-entry in plan order, so the main
  ledger's entry sequence — and therefore ``virtual_ms``, a float sum —
  is identical to a sequential run at any parallelism;
* health-tracker mutations (success/failure/advance) recorded by the
  worker's journal are applied to the real
  :class:`~repro.core.resilience.HealthTracker` in order, so circuit
  breakers evolve exactly as they would sequentially;
* counters/histograms are folded in via ``MetricsRegistry.merge_from``.

Channels, by contrast, are published at *completion* (out of order) so
dependents can dispatch as early as possible — results are
order-independent; accounting is not.

Fault injection and backoff jitter are kept schedule-free by
*predict-and-commit*: ordinals (:class:`FailureInjector`) and backoff
tokens are assigned by **plan index** at dispatch without advancing the
shared counters, and committed during replay.  A failure surfaces at
replay in plan order; the scheduler then drains in-flight work, discards
(unpublishes, rolls back) every speculative execution at a higher index,
and re-raises for the executor's failover ladder — leaving all counters
exactly where a sequential run's failure would have left them.

Loop atoms are *numbering barriers*: their bodies consume ordinals
dynamically, so a loop runs inline on the coordinator once everything
before it has been replayed and nothing is in flight.

Execution backends: threads and processes
-----------------------------------------

The coordinator logic above is backend-agnostic; what varies is where
the pure computation runs.  ``Executor(execution_mode="thread")`` (the
default) dispatches onto a thread pool.  ``execution_mode="process"``
forks a pool of worker *processes* at segment start (fork, not spawn:
plans hold closures that cannot be pickled, so workers inherit the
plan/executor/runtime by address-space copy) and ships work through
``multiprocessing`` queues.  Task messages carry the atom's input
channels (columnar ones as shared-memory descriptors — the buffers
never enter a pickle stream — rows as ordinary pickles); results carry
the same journal payload a thread worker would hand back (shard tracer,
metrics, health ops), plus the mutations a thread worker would have
made against shared objects — the failure injector's attempt counts and
log lines, and listener events — shipped as deltas and applied by the
coordinator at completion.  Replay is unchanged, so ledger sequence,
``virtual_ms``, span shape and outputs are byte-identical across
sequential, thread and process execution at any parallelism.

Shared-memory segment lifetime is coordinator-owned and pessimistic:
output segment names are registered *before* dispatch, refcount release
unlinks deterministically, and the segment teardown in ``run()``'s
``finally`` (after localising any channel still needed downstream)
unlinks everything the run registered — covering failover drains,
``SimulatedCrash``, deadline kills and plain exceptions.  Workers exit
via ``os._exit`` so the coordinator's ``atexit`` backstop never runs in
a child against inherited registry state.

Channel refcounting
-------------------

When failover is disabled (materialised channels are not needed for
suffix re-planning), the scheduler counts each hand-off's consumers at
plan time and drops the payload (:meth:`CollectionChannel.release`) when
the last consumer finishes — bounding peak memory to the live frontier
instead of the whole run's intermediates.  Collect-sink channels are
never released.

Critical-path clock
-------------------

``virtual_ms`` stays the *total work* (identical at any parallelism);
the scheduler additionally computes a **makespan**: each atom's virtual
start is the max of its dependencies' virtual finishes (plus any
serialized coordinator overhead such as platform startup), its finish is
start + its own ledger segment.  ``metrics.makespan_ms`` is the largest
finish — what the run *would* take with the scheduled overlap — and is
``<= virtual_ms`` by construction.
"""

from __future__ import annotations

import itertools
import os
import pickle
import queue
import threading
import time
from bisect import insort
from collections import ChainMap
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.channels import (
    CollectionChannel,
    ColumnarChannel,
    ShmColumnarChannel,
    export_columnar,
    register_segment,
    reset_segment_tracking,
    shm_segment_name,
    unlink_segment,
)
from repro.core.execution.plan import ExecutionPlan, LoopAtom, TaskAtom
from repro.core.listeners import ExecutionEvent, RecordingListener
from repro.core.metrics import ExecutionMetrics
from repro.core.resilience import BREAKER_CLOSED
from repro.errors import AtomExhaustedError, ExecutionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.executor import Executor
    from repro.core.observability.spans import Span, Tracer
    from repro.core.runtime import RuntimeContext

__all__ = [
    "ConcurrentAtomScheduler",
    "CriticalPath",
    "atom_dependencies",
]

#: thread-name prefix for pool workers (worker ids are parsed off it)
_WORKER_PREFIX = "repro-atom"

#: per-process counter distinguishing scheduler runs in segment names
_SHM_NONCE = itertools.count(1)

_PENDING = 0
_RUNNING = 1
_DONE = 2
_REPLAYED = 3


def atom_dependencies(atom: TaskAtom | LoopAtom) -> set[int]:
    """Operator ids whose channels ``atom`` consumes (its DAG parents)."""
    if isinstance(atom, LoopAtom):
        return {atom.state_producer_id}
    return set(atom.external_inputs.values())


# ----------------------------------------------------------------------
# critical-path virtual time
# ----------------------------------------------------------------------
class CriticalPath:
    """Tracks per-atom virtual start/finish along channel dependencies.

    Shared by the sequential and concurrent execution paths so
    ``metrics.makespan_ms`` means the same thing at any parallelism: the
    virtual time of the longest dependency chain, with coordinator
    overheads (startup, failover re-planning) serializing before the
    atoms that follow them.
    """

    def __init__(self) -> None:
        #: operator id -> virtual finish of the atom producing it
        self.finish: dict[int, float] = {}
        self.makespan_ms = 0.0
        #: sum of atom ledger-segment costs recorded so far
        self.accounted_ms = 0.0
        #: coordinator overhead accumulated so far (startup, replans...)
        self.base_ms = 0.0

    def sync_overhead(self, ledger_total_ms: float) -> None:
        """Fold non-atom charges into the serialized coordinator base.

        ``ledger_total_ms`` is the main ledger's running total; whatever
        it holds beyond the atom costs already accounted is overhead
        that delays every subsequently scheduled atom.
        """
        base = ledger_total_ms - self.accounted_ms
        if base > self.base_ms:
            self.base_ms = base

    def record(self, atom: TaskAtom | LoopAtom, cost_ms: float) -> float:
        """Account one executed atom; returns its virtual finish."""
        start = self.base_ms
        for op_id in atom_dependencies(atom):
            produced = self.finish.get(op_id)
            if produced is not None and produced > start:
                start = produced
        finish = start + cost_ms
        for op_id in atom.output_ids:
            self.finish[op_id] = finish
        if finish > self.makespan_ms:
            self.makespan_ms = finish
        self.accounted_ms += cost_ms
        return finish


# ----------------------------------------------------------------------
# worker-side journaling
# ----------------------------------------------------------------------
class _JournalHealth:
    """Health-tracker stand-in workers mutate; coordinator replays.

    Records every operation instead of applying it, and never rejects —
    the authoritative quarantine decision is made by the coordinator at
    replay time with the health state a sequential run would have had.
    """

    __slots__ = ("ops",)

    def __init__(self) -> None:
        self.ops: list[tuple[str, str | None, Any]] = []

    def record_success(self, name: str) -> None:
        self.ops.append(("success", name, None))

    def record_failure(self, name: str, permanent: bool = False) -> bool:
        self.ops.append(("failure", name, permanent))
        return False

    def advance(self, ms: float) -> None:
        self.ops.append(("advance", None, ms))

    # Worker-side availability checks always pass; the coordinator's
    # replay applies the real (ordered) check.
    def is_available(self, name: str) -> bool:
        return True

    def state(self, name: str) -> str:
        return BREAKER_CLOSED

    def replay_onto(self, health) -> None:
        """Apply the journal to a real HealthTracker, in order."""
        for op, name, arg in self.ops:
            if op == "success":
                health.record_success(name)
            elif op == "failure":
                health.record_failure(name, permanent=arg)
            else:
                health.advance(arg)


class _WorkerRuntime:
    """The slice of a RuntimeContext a worker thread may see.

    Shares the read-mostly services (catalog, failure injector, source
    cache) and privatises everything a worker must not contend on: the
    tracer (a per-atom shard), health (a journal), loop-state bindings
    and the checkpoint (checkpointing implies sequential execution).
    """

    __slots__ = (
        "catalog", "failure_injector", "tracer", "checkpoint", "health",
        "bound_sources", "source_cache", "caching_enabled",
    )

    def __init__(self, base: "RuntimeContext", tracer, health) -> None:
        self.catalog = base.catalog
        self.failure_injector = base.failure_injector
        self.tracer = tracer
        self.checkpoint = None
        self.health = health
        self.bound_sources: dict[int, list[Any]] = {}
        self.source_cache = base.source_cache
        self.caching_enabled = False


@dataclass
class _AtomJournal:
    """Everything one worker-executed atom produced, awaiting replay."""

    index: int
    atom: TaskAtom
    metrics: ExecutionMetrics
    health: _JournalHealth
    shard: "Tracer | None"
    worker: int
    slot: int
    ordinal: int | None
    #: channels the atom produced (op id -> channel), published on
    #: completion, unpublished if the run aborts before this replays
    produced: dict[int, CollectionChannel] = field(default_factory=dict)
    error: BaseException | None = None

    @property
    def cost_ms(self) -> float:
        return self.metrics.ledger.total_ms


@dataclass
class _ProcessResult:
    """One worker *process*'s completed atom, in picklable form.

    The process-mode twin of :class:`_AtomJournal`: same journal payload
    (shard tracer, metrics, health ops — all plain data), but channels
    travel as transport tuples (``("shm", descriptor)`` for columnar
    outputs exported to shared memory, ``("raw", channel)`` for pickled
    row channels), errors are stripped of unpicklable attachments
    (``AtomExhaustedError.atom`` drags UDF closures; the coordinator
    reattaches ``plan.atoms[index]``), and the mutations a thread
    worker would have made against shared objects ride along as deltas:
    injector attempt counts + log lines, and listener events.
    """

    index: int
    worker: int
    slot: int
    ordinal: int | None
    metrics: ExecutionMetrics
    health: _JournalHealth
    shard: "Tracer | None"
    produced: list[tuple[int, tuple]]
    error: BaseException | None
    error_was_exhausted: bool
    injector_attempts: dict[int, int]
    injector_log: list[tuple[int, str | None, str]]
    events: list[ExecutionEvent]


# ----------------------------------------------------------------------
# execution backends
# ----------------------------------------------------------------------
class _ThreadBackend:
    """The original thread-pool dispatch: shared-memory-free, workers
    touch the live (coordinator-owned) objects through their shards."""

    def __init__(self, scheduler: "ConcurrentAtomScheduler") -> None:
        self._scheduler = scheduler
        self._pool = ThreadPoolExecutor(
            max_workers=scheduler.parallelism,
            thread_name_prefix=_WORKER_PREFIX,
        )

    def submit(
        self, index: int, atom: TaskAtom, ordinal: int | None, token: int,
        slot: int,
    ) -> None:
        self._pool.submit(
            self._scheduler._job, index, atom, ordinal, token, slot,
            time.perf_counter(),
        )

    def next_result(self) -> _AtomJournal:
        return self._scheduler._done_q.get()

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class _ProcessBackend:
    """Forked worker processes fed through multiprocessing queues.

    Forked at construction (segment start), so workers inherit the
    plan's closures, the executor's per-segment estimate tables and the
    runtime services by address-space copy; everything dispatched later
    travels through the task queue.  ``next_result`` polls with a
    timeout so a dead worker (OOM-kill, hard crash) surfaces as an
    :class:`ExecutionError` instead of a hang.
    """

    def __init__(self, scheduler: "ConcurrentAtomScheduler") -> None:
        import multiprocessing

        self._scheduler = scheduler
        context = multiprocessing.get_context("fork")
        self._task_q = context.Queue()
        self._result_q = context.Queue()
        self._workers = [
            context.Process(
                target=scheduler._process_worker_main,
                args=(worker, self._task_q, self._result_q),
                name=f"{_WORKER_PREFIX}-proc_{worker}",
                daemon=True,
            )
            for worker in range(scheduler.parallelism)
        ]
        for process in self._workers:
            process.start()

    def submit(
        self, index: int, atom: TaskAtom, ordinal: int | None, token: int,
        slot: int,
    ) -> None:
        self._task_q.put(
            self._scheduler._build_task(index, atom, ordinal, token, slot)
        )

    def next_result(self) -> _AtomJournal:
        while True:
            try:
                result = self._result_q.get(timeout=0.2)
            except queue.Empty:
                dead = [p for p in self._workers if not p.is_alive()]
                if dead:
                    raise ExecutionError(
                        f"worker process {dead[0].name!r} died "
                        f"(exit code {dead[0].exitcode}) with work in flight"
                    ) from None
                continue
            return self._scheduler._journal_from_result(result)

    def shutdown(self) -> None:
        for _ in self._workers:
            try:
                self._task_q.put_nowait(None)
            except Exception:  # pragma: no cover - queue already broken
                break
        deadline = time.monotonic() + 10.0
        for process in self._workers:
            process.join(max(0.1, deadline - time.monotonic()))
        for process in self._workers:
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(1.0)
        # Drop undelivered items (aborted runs leave stale results);
        # cancel_join_thread so feeder threads never block interpreter exit.
        for q in (self._task_q, self._result_q):
            q.close()
            q.cancel_join_thread()


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------
class ConcurrentAtomScheduler:
    """Runs one plan segment's atoms concurrently, replaying in order.

    One instance per top-level plan (a fresh one after every failover
    re-plan); the executor owns retries, movement pricing and failover —
    the scheduler owns dispatch, journals, replay and the critical path.
    """

    def __init__(
        self,
        executor: "Executor",
        plan: ExecutionPlan,
        channels: dict[int, CollectionChannel],
        runtime: "RuntimeContext",
        metrics: ExecutionMetrics,
        models: dict[str, Any],
        cpath: CriticalPath,
        parallelism: int,
        start: int = 0,
    ) -> None:
        self.executor = executor
        self.plan = plan
        self.channels = channels
        self.runtime = runtime
        self.metrics = metrics
        self.models = models
        self.cpath = cpath
        self.parallelism = max(2, parallelism)
        #: "thread" or "process" — which backend runs the pure computation
        self.execution_mode = getattr(executor, "execution_mode", "thread")
        self.tracer = metrics.ledger.tracer
        self._parent_span: "Span | None" = (
            self.tracer.current if self.tracer is not None else None
        )
        #: durable run journal (None when the run is not journaled);
        #: committed by the coordinator at replay, in plan order.
        self._journal = executor._active_journal(runtime)

        atoms = plan.atoms
        n = len(atoms)
        self._deps = [atom_dependencies(atom) for atom in atoms]
        self._state = [_PENDING] * n
        # ``start`` atoms were restored from the run journal on resume:
        # their channels are already published, their effects replayed.
        for index in range(min(start, n)):
            self._state[index] = _REPLAYED
        self._journals: dict[int, _AtomJournal] = {}
        self._published: dict[int, list[int]] = {}
        self._replay_cursor = min(start, n)
        self._inflight = 0
        self._done_q: "queue.Queue[_AtomJournal]" = queue.Queue()

        # --- per-platform concurrency slots -------------------------------
        self._slot_free: dict[str, list[int]] = {}
        for platform in plan.platforms:
            cap = max(1, min(
                self.parallelism,
                getattr(platform, "max_concurrent_atoms", 1),
            ))
            self._slot_free.setdefault(platform.name, list(range(cap)))

        # --- process-wide admission (serving) ------------------------------
        # When a PlatformSlotPool is installed on the executor, every
        # dispatch additionally draws a slot from the *shared* budget, so
        # concurrent queries cannot together exceed a platform's cap.
        self._slot_pool = getattr(executor, "slot_pool", None)
        self._pool_starved: set[str] = set()

        # --- predict-and-commit counters ----------------------------------
        self._pred_ordinal: list[int | None] = [None] * n
        self._pred_token: list[int] = [0] * n

        # --- channel refcounting -------------------------------------------
        # Only safe when materialised channels are not needed later for
        # failover suffix re-planning, and when no checkpoint is
        # attached: checkpoint saves happen at *replay* (plan order), so
        # a consumer completing early must not release a producer's
        # channel before the producer's ``_save_atom`` reads it.
        self._refcount_enabled = (
            not executor.failover and runtime.checkpoint is None
        )
        self._protected = {sink.id for sink in plan.collect_sinks}
        self._consumers: dict[int, int] = {}
        for deps in self._deps:
            for op_id in deps:
                self._consumers[op_id] = self._consumers.get(op_id, 0) + 1

        # --- process-mode shared-memory bookkeeping ------------------------
        #: segment names this run registered (unlinked in run()'s finally)
        self._run_segments: set[str] = set()
        self._shm_nonce = next(_SHM_NONCE)
        self._backend: "_ThreadBackend | _ProcessBackend | None" = None

    # ------------------------------------------------------------------
    # predictions
    # ------------------------------------------------------------------
    def _recompute_predictions(self, start: int) -> None:
        """Assign ordinals/backoff tokens by plan index from the current
        committed counter positions, stopping at the next loop barrier
        (its dynamic consumption re-bases everything after it)."""
        injector = self.runtime.failure_injector
        next_ordinal = injector.position + 1 if injector is not None else None
        next_token = getattr(self.executor, "_atom_seq", 0)
        atoms = self.plan.atoms
        for i in range(start, len(atoms)):
            if isinstance(atoms[i], LoopAtom):
                break
            self._pred_ordinal[i] = next_ordinal
            self._pred_token[i] = next_token
            if next_ordinal is not None:
                next_ordinal += 1
            next_token += 1

    def _commit_counters(self, journal: _AtomJournal) -> None:
        """Advance the shared counters for one replayed atom execution —
        exactly what the sequential path's ``next_atom()``/``_atom_seq``
        would have consumed."""
        injector = self.runtime.failure_injector
        if injector is not None:
            injector.skip(1)
        self.executor._atom_seq = getattr(self.executor, "_atom_seq", 0) + 1

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Execute every atom; raises exactly what sequential would."""
        n = len(self.plan.atoms)
        if n == 0:
            return
        self.cpath.sync_overhead(self.metrics.ledger.total_ms)
        self._recompute_predictions(self._replay_cursor)
        backend = (
            _ProcessBackend(self)
            if self.execution_mode == "process"
            else _ThreadBackend(self)
        )
        self._backend = backend
        try:
            while self._replay_cursor < n:
                self._dispatch_ready(backend)
                if self._inflight:
                    journal = backend.next_result()
                    self._on_complete(journal)
                    self._replay_prefix()
                    continue
                # Nothing in flight: either the head is a loop barrier
                # whose turn has come, or the plan is undispatchable.
                head = self.plan.atoms[self._replay_cursor]
                if isinstance(head, LoopAtom) and self._deps_ready(
                    self._replay_cursor
                ):
                    self._run_loop_inline(self._replay_cursor)
                    continue
                if self._slot_pool is not None and self._pool_starved:
                    # Not a wiring deadlock: every dispatchable atom is
                    # waiting on the shared admission budget.  Park until
                    # a concurrent query releases a slot, then retry.
                    starved = self._pool_starved
                    self._pool_starved = set()
                    if self._slot_pool.wait_for_slot(starved, timeout=60.0):
                        continue
                raise ExecutionError(
                    f"scheduler deadlock: atom index {self._replay_cursor} "
                    f"({head!r}) has unsatisfiable dependencies "
                    f"{sorted(self._deps[self._replay_cursor])}"
                )
        finally:
            backend.shutdown()
            self._backend = None
            if self._run_segments:
                self._teardown_segments()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _deps_ready(self, index: int) -> bool:
        return all(op_id in self.channels for op_id in self._deps[index])

    def _dispatch_ready(self, backend) -> int:
        """Submit every dispatchable task atom; returns how many."""
        atoms = self.plan.atoms
        submitted = 0
        for index in range(self._replay_cursor, len(atoms)):
            atom = atoms[index]
            if isinstance(atom, LoopAtom):
                # Barrier: nothing beyond an unfinished loop may run
                # (its body consumes ordinals dynamically).
                break
            if self._state[index] != _PENDING:
                continue
            if not self._deps_ready(index):
                continue
            free = self._slot_free.get(atom.platform.name)
            if not free:
                continue
            if self._slot_pool is not None and not self._slot_pool.try_acquire(
                atom.platform.name
            ):
                # Another query holds the shared budget; park this atom.
                self._pool_starved.add(atom.platform.name)
                continue
            slot = free.pop(0)
            self._state[index] = _RUNNING
            self._inflight += 1
            submitted += 1
            backend.submit(
                index, atom, self._pred_ordinal[index],
                self._pred_token[index], slot,
            )
        return submitted

    # ------------------------------------------------------------------
    # worker side (runs on pool threads)
    # ------------------------------------------------------------------
    def _job(
        self,
        index: int,
        atom: TaskAtom,
        ordinal: int | None,
        token: int,
        slot: int,
        submitted_at: float,
    ) -> None:
        # Dispatch-to-start latency: how long the atom sat in the pool's
        # queue before a worker picked it up.  Recorded on the span (and
        # the atom_queue_wait_ms histogram) only when profiling is on.
        queue_wait_ms = (time.perf_counter() - submitted_at) * 1e3
        thread_name = threading.current_thread().name
        try:
            worker = int(thread_name.rsplit("_", 1)[1])
        except (IndexError, ValueError):  # pragma: no cover - defensive
            worker = 0
        shard = None
        if self.tracer is not None:
            from repro.core.observability.spans import Tracer

            shard = Tracer()
        wmetrics = ExecutionMetrics(
            registry=shard.registry if shard is not None else None
        )
        wmetrics.ledger.tracer = shard
        health = _JournalHealth()
        wruntime = _WorkerRuntime(self.runtime, shard, health)
        journal = _AtomJournal(
            index=index, atom=atom, metrics=wmetrics, health=health,
            shard=shard, worker=worker, slot=slot, ordinal=ordinal,
        )
        overlay: dict[int, CollectionChannel] = journal.produced
        channels_view = ChainMap(overlay, self.channels)
        try:
            self.executor._run_task_atom(
                atom, channels_view, wruntime, wmetrics, self.models,
                ordinal=ordinal, token=token, queue_wait_ms=queue_wait_ms,
            )
        except BaseException as error:  # replayed (and re-raised) in order
            journal.error = error
        self._done_q.put(journal)

    # ------------------------------------------------------------------
    # process mode: task build (coordinator) and job loop (workers)
    # ------------------------------------------------------------------
    def _build_task(
        self,
        index: int,
        atom: TaskAtom,
        ordinal: int | None,
        token: int,
        slot: int,
    ) -> tuple:
        """Assemble one picklable task message for a worker process.

        Input channels travel by value — shared-memory descriptors for
        columnar payloads, pickles for rows — because workers were
        forked at segment start and cannot see channels published since.
        Output segment names are assigned (and registered for teardown)
        here, *before* dispatch, so a crash anywhere between dispatch
        and completion still unlinks whatever the worker created.
        """
        inputs = {
            op_id: self._transport_channel(self.channels[op_id])
            for op_id in self._deps[index]
        }
        out_names: dict[int, str] = {}
        for position, op_id in enumerate(sorted(atom.output_ids)):
            name = shm_segment_name(self._shm_nonce, index, position)
            register_segment(name)
            self._run_segments.add(name)
            out_names[op_id] = name
        return (
            index, ordinal, token, slot, time.perf_counter(), inputs,
            out_names,
        )

    @staticmethod
    def _transport_channel(channel: CollectionChannel) -> tuple:
        """How one input channel crosses the process boundary."""
        if isinstance(channel, ShmColumnarChannel) and not channel.released:
            # Re-ship the descriptor: the consumer attaches the same
            # segment; the buffers never enter the task pickle.
            return ("shm", channel.descriptor)
        return ("raw", channel)

    def _journal_from_result(self, result: _ProcessResult) -> _AtomJournal:
        """Rebuild a worker process's result into an :class:`_AtomJournal`.

        Besides reconstructing channels (shared-memory descriptors
        become owner :class:`ShmColumnarChannel` instances — the
        coordinator's published copy unlinks on refcount release) and
        reattaching the stripped ``AtomExhaustedError.atom``, this lands
        the mutations a thread-mode worker would have made against
        shared objects at execution time: injector attempt counts + log
        lines (before any ``reset_attempts`` an abort might issue), and
        listener events (thread-mode listeners also observe completion
        order under concurrency; live mid-atom ordering is best-effort
        by contract).
        """
        atom = self.plan.atoms[result.index]
        journal = _AtomJournal(
            index=result.index, atom=atom, metrics=result.metrics,
            health=result.health, shard=result.shard, worker=result.worker,
            slot=result.slot, ordinal=result.ordinal,
        )
        for op_id, (kind, payload) in result.produced:
            if kind == "shm":
                journal.produced[op_id] = ShmColumnarChannel(
                    payload, owner=True
                )
            else:
                journal.produced[op_id] = payload
        error = result.error
        if error is not None and result.error_was_exhausted and isinstance(
            error, AtomExhaustedError
        ):
            error.atom = atom
        journal.error = error
        injector = self.runtime.failure_injector
        if injector is not None:
            if result.injector_attempts:
                injector.apply_attempts(result.injector_attempts)
            if result.injector_log:
                injector.log.extend(result.injector_log)
        listeners = self.executor.listeners
        if listeners and result.events:
            with self.executor._listener_lock:
                for event in result.events:
                    for listener in listeners:
                        listener.on_event(event)
        return journal

    def _process_worker_main(self, worker: int, task_q, result_q) -> None:
        """Entry point of one forked worker process."""
        # The inherited live-segment registry belongs to the coordinator;
        # this process must never unlink coordinator segments on exit.
        reset_segment_tracking()
        code = 0
        try:
            while True:
                task = task_q.get()
                if task is None:
                    break
                result_q.put(self._process_job(worker, task))
        except BaseException:  # pragma: no cover - scheduler bug surface
            code = 1
        finally:
            try:
                result_q.close()
                result_q.join_thread()
            finally:
                # ``_exit``: the parent's atexit handlers (segment
                # backstop, test plugins) must not run in a child.
                os._exit(code)

    def _process_job(self, worker: int, task: tuple) -> _ProcessResult:
        """The process twin of :meth:`_job`: run one atom against private
        shards, then package everything picklable for the coordinator."""
        index, ordinal, token, slot, submitted_at, inputs, out_names = task
        queue_wait_ms = (time.perf_counter() - submitted_at) * 1e3
        atom = self.plan.atoms[index]
        shard = None
        if self.tracer is not None:
            from repro.core.observability.spans import Tracer

            shard = Tracer()
        wmetrics = ExecutionMetrics(
            registry=shard.registry if shard is not None else None
        )
        wmetrics.ledger.tracer = shard
        health = _JournalHealth()
        wruntime = _WorkerRuntime(self.runtime, shard, health)
        injector = self.runtime.failure_injector
        attempts_before = (
            injector.snapshot_attempts() if injector is not None else {}
        )
        log_mark = len(injector.log) if injector is not None else 0
        # Listener swap (worker-local fork copy): events are recorded
        # here and fanned out by the coordinator at completion.
        recorder = RecordingListener()
        self.executor.listeners = [recorder]
        local: dict[int, CollectionChannel] = {}
        for op_id, (kind, payload) in inputs.items():
            local[op_id] = (
                ShmColumnarChannel(payload, owner=False)
                if kind == "shm"
                else payload
            )
        produced: dict[int, CollectionChannel] = {}
        channels_view = ChainMap(produced, local)
        error: BaseException | None = None
        try:
            self.executor._run_task_atom(
                atom, channels_view, wruntime, wmetrics, self.models,
                ordinal=ordinal, token=token, queue_wait_ms=queue_wait_ms,
            )
        except BaseException as failure:  # replayed/re-raised in order
            error = failure
        transported: list[tuple[int, tuple]] = []
        if error is None:
            try:
                for op_id, channel in produced.items():
                    if (
                        isinstance(channel, ColumnarChannel)
                        and not channel.released
                    ):
                        descriptor = export_columnar(
                            channel, out_names[op_id]
                        )
                        transported.append((op_id, ("shm", descriptor)))
                        if self.executor._profiler is not None:
                            from repro.core.observability.resources import (
                                record_shm_bytes,
                            )

                            record_shm_bytes(
                                wmetrics.registry, descriptor.nbytes,
                                atom.platform.name,
                            )
                    else:
                        transported.append((op_id, ("raw", channel)))
            except BaseException as failure:  # pragma: no cover - defensive
                transported = []
                error = ExecutionError(
                    f"atom #{atom.id}: shared-memory export failed: "
                    f"{failure}"
                )
        attempts_delta: dict[int, int] = {}
        log_delta: list[tuple[int, str | None, str]] = []
        if injector is not None:
            attempts_delta = {
                key: count
                for key, count in injector.snapshot_attempts().items()
                if attempts_before.get(key) != count
            }
            log_delta = injector.log[log_mark:]
        return _ProcessResult(
            index=index, worker=worker, slot=slot, ordinal=ordinal,
            metrics=wmetrics, health=health, shard=shard,
            produced=transported,
            error=self._strip_error(error),
            error_was_exhausted=isinstance(error, AtomExhaustedError),
            injector_attempts=attempts_delta,
            injector_log=log_delta,
            events=recorder.events,
        )

    @staticmethod
    def _strip_error(error: BaseException | None) -> BaseException | None:
        """Make a worker-side error safe to pickle.

        ``AtomExhaustedError.atom`` drags the whole task fragment (UDF
        closures) into the pickle — stripped here, reattached from
        ``plan.atoms[index]`` by :meth:`_journal_from_result`.  Anything
        that still refuses the round trip degrades to an
        :class:`ExecutionError` carrying the original message, so a
        worker never dies on an unpicklable result.
        """
        if error is None:
            return None
        if isinstance(error, AtomExhaustedError):
            error.atom = None
        try:
            pickle.loads(pickle.dumps(error))
        except Exception:
            return ExecutionError(f"{type(error).__name__}: {error}")
        return error

    def _teardown_segments(self) -> None:
        """Unlink every segment this run registered (run()'s finally).

        Channels still live — collect sinks, failover bound sources, a
        crash-interrupted suffix — are localised first (payload copied
        into process-local buffers), so nothing downstream ever touches
        an unlinked segment.  Tolerant of names never created (errored
        atoms) and already unlinked (refcount release): this is the
        abnormal-exit backstop for failover drains, ``SimulatedCrash``,
        deadline kills and plain exceptions alike.
        """
        for channel in self.channels.values():
            if isinstance(channel, ShmColumnarChannel):
                try:
                    channel.localize()
                except ExecutionError:  # pragma: no cover - defensive
                    pass
        for name in self._run_segments:
            unlink_segment(name)
        self._run_segments.clear()

    # ------------------------------------------------------------------
    # coordinator side: completion + replay
    # ------------------------------------------------------------------
    def _on_complete(self, journal: _AtomJournal) -> None:
        self._inflight -= 1
        self._state[journal.index] = _DONE
        self._journals[journal.index] = journal
        insort(self._slot_free[journal.atom.platform.name], journal.slot)
        if self._slot_pool is not None:
            self._slot_pool.release(journal.atom.platform.name)
        if journal.error is None and journal.produced:
            # Publish eagerly so dependents can dispatch before replay.
            self.channels.update(journal.produced)
            self._published[journal.index] = list(journal.produced)
        if journal.error is None:
            self._consume_inputs(journal.index)

    def _consume_inputs(self, index: int) -> None:
        """Refcount: the atom has finished reading its input channels."""
        if not self._refcount_enabled:
            return
        for op_id in self._deps[index]:
            remaining = self._consumers.get(op_id, 0) - 1
            self._consumers[op_id] = remaining
            if remaining <= 0 and op_id not in self._protected:
                channel = self.channels.get(op_id)
                if channel is not None:
                    channel.release()

    def _replay_prefix(self) -> None:
        atoms = self.plan.atoms
        while (
            self._replay_cursor < len(atoms)
            and self._state[self._replay_cursor] == _DONE
        ):
            journal = self._journals.pop(self._replay_cursor)
            self._replay_one(journal)
            self._state[self._replay_cursor] = _REPLAYED
            self._replay_cursor += 1

    def _replay_one(self, journal: _AtomJournal) -> None:
        atom = journal.atom
        # Mark *before* any effect lands so the journal record captures
        # exactly this atom's slice of ledger/span/observation state.
        mark = (
            self.executor._journal_mark(self.metrics)
            if self._journal is not None
            else None
        )
        # Authoritative fail-fast quarantine check, with the health state
        # a sequential run would have at this exact point.  A rejected
        # atom never ran sequentially: discard its journal wholesale.
        try:
            self.executor._reject_if_quarantined(atom, self.runtime)
        except AtomExhaustedError as rejection:
            self._journals[journal.index] = journal  # discard self too
            self._abort(discard_from=journal.index)
            raise rejection
        if journal.error is not None and not isinstance(
            journal.error, AtomExhaustedError
        ):
            # Programming/user error outside the retry ladder: surface in
            # deterministic (plan) order without committing counters.
            self._journals[journal.index] = journal
            self._abort(discard_from=journal.index)
            raise journal.error
        # Merge effects in plan order: spans first (advances the virtual
        # clock by the shard total, exactly as live charging would
        # have), then ledger entries, registry series, health ops.
        if journal.shard is not None and self.tracer is not None:
            self.tracer.graft(
                journal.shard,
                parent=self._parent_span,
                stamp={"worker": journal.worker, "slot": journal.slot},
            )
        self.metrics.ledger.merge(journal.metrics.ledger)
        self.metrics.registry.merge_from(journal.metrics.registry)
        journal.health.replay_onto(self.runtime.health)
        self.metrics.misestimates.extend(journal.metrics.misestimates)
        self.metrics.calibration_observations.extend(
            journal.metrics.calibration_observations
        )
        self._commit_counters(journal)
        if journal.error is not None:
            # The failed execution's charges/health/counters are all in —
            # identical to a sequential failure — now discard everything
            # speculatively executed beyond it and surface the failure.
            self._abort(discard_from=journal.index + 1)
            raise journal.error
        # Checkpoint save and journal commit happen here, at the
        # deterministic replay step — same plan-order point (and same
        # relative charge position) as the sequential path.
        extra = self.metrics.ledger.total_ms
        if self.runtime.checkpoint is not None:
            self.executor._save_atom(
                journal.index, atom, self.channels, self.runtime, self.metrics
            )
        if self._journal is not None:
            self.executor._journal_commit(
                self._journal, mark, journal.index, atom,
                self.channels, self.runtime, self.metrics,
            )
        self.cpath.record(
            atom, journal.cost_ms + self.metrics.ledger.total_ms - extra
        )

    # ------------------------------------------------------------------
    # failure: drain, discard, roll back
    # ------------------------------------------------------------------
    def _abort(self, discard_from: int) -> None:
        """Drain in-flight work and discard journals >= ``discard_from``.

        Discarded executions are unpublished (their channels removed)
        and their predicted injector ordinals rolled back, so the
        failover re-plan — and its re-executions — see exactly the
        state a sequential run's failure would have left.
        """
        while self._inflight:
            journal = self._backend.next_result()
            self._inflight -= 1
            self._state[journal.index] = _DONE
            self._journals[journal.index] = journal
            if self._slot_pool is not None:
                self._slot_pool.release(journal.atom.platform.name)
            if journal.error is None and journal.produced:
                self._published[journal.index] = list(journal.produced)
                self.channels.update(journal.produced)
        injector = self.runtime.failure_injector
        discarded_ordinals: list[int] = []
        for index, journal in list(self._journals.items()):
            if index < discard_from:
                continue
            for op_id in self._published.pop(index, ()):
                self.channels.pop(op_id, None)
            if journal.ordinal is not None:
                discarded_ordinals.append(journal.ordinal)
            del self._journals[index]
        if injector is not None and discarded_ordinals:
            injector.reset_attempts(discarded_ordinals)

    # ------------------------------------------------------------------
    # loop atoms: inline, at a barrier
    # ------------------------------------------------------------------
    def _run_loop_inline(self, index: int) -> None:
        """Run a loop atom live on the coordinator.

        Everything before it has been replayed and nothing is in
        flight, so the shared counters, health tracker and tracer are
        exactly where a sequential run would have them; the loop (and
        its dynamically-numbered body atoms) executes through the
        ordinary sequential machinery.
        """
        atom = self.plan.atoms[index]
        before = self.metrics.ledger.total_ms
        mark = (
            self.executor._journal_mark(self.metrics)
            if self._journal is not None
            else None
        )
        if self._slot_pool is not None:
            self._slot_pool.acquire(atom.platform.name)
        try:
            self.executor._run_loop_atom(
                atom, self.channels, self.runtime, self.metrics, self.models
            )
        finally:
            if self._slot_pool is not None:
                self._slot_pool.release(atom.platform.name)
        if self.runtime.checkpoint is not None:
            self.executor._save_atom(
                index, atom, self.channels, self.runtime, self.metrics
            )
        if self._journal is not None:
            self.executor._journal_commit(
                self._journal, mark, index, atom,
                self.channels, self.runtime, self.metrics,
            )
        self._state[index] = _REPLAYED
        self._replay_cursor = index + 1
        self.cpath.record(atom, self.metrics.ledger.total_ms - before)
        self._consume_inputs(index)
        # The loop consumed ordinals/tokens live; re-base predictions
        # for everything after the barrier.
        self._recompute_predictions(index + 1)
