"""Data-quanta model.

The paper defines a *data quantum* as "the smallest unit of data elements
from the input datasets" — a tuple of a dataset, a row of a matrix, a line
of text.  RHEEM operators are defined over single quanta, which is what
lets the core parallelise them freely.

In this reproduction a data quantum is any Python object.  For structured
workloads we provide :class:`Schema` and :class:`Record`, a lightweight
named-tuple-like row that keeps field access readable in UDFs while staying
cheap to hash and compare (both are required by shuffles and joins).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import ValidationError

#: A UDF over a single data quantum.
Udf = Callable[[Any], Any]

#: A predicate UDF over a single data quantum.
Predicate = Callable[[Any], bool]

#: A key-extraction UDF.
KeyUdf = Callable[[Any], Any]


class Schema:
    """An ordered set of named fields describing structured data quanta.

    Schemas are immutable; equality is field-wise, which allows storage
    formats and relational operators to check compatibility cheaply.
    """

    __slots__ = ("_fields", "_index")

    def __init__(self, fields: Sequence[str]):
        if len(set(fields)) != len(fields):
            raise ValidationError(f"duplicate field names in schema: {fields!r}")
        if not fields:
            raise ValidationError("a schema needs at least one field")
        self._fields: tuple[str, ...] = tuple(fields)
        self._index: dict[str, int] = {name: i for i, name in enumerate(self._fields)}

    @property
    def fields(self) -> tuple[str, ...]:
        """The field names, in order."""
        return self._fields

    def index_of(self, field: str) -> int:
        """Return the positional index of ``field``.

        Raises :class:`ValidationError` for unknown fields so schema bugs
        surface as library errors rather than ``KeyError`` noise.
        """
        try:
            return self._index[field]
        except KeyError:
            raise ValidationError(
                f"unknown field {field!r}; schema has {self._fields!r}"
            ) from None

    def project(self, fields: Sequence[str]) -> "Schema":
        """Return a new schema restricted to ``fields`` (kept in given order)."""
        for field in fields:
            self.index_of(field)
        return Schema(fields)

    def record(self, *values: Any) -> "Record":
        """Build a :class:`Record` of this schema from positional values."""
        if len(values) != len(self._fields):
            raise ValidationError(
                f"expected {len(self._fields)} values for schema "
                f"{self._fields!r}, got {len(values)}"
            )
        return Record(self, tuple(values))

    def from_mapping(self, mapping: dict[str, Any]) -> "Record":
        """Build a :class:`Record` from a field→value mapping."""
        try:
            values = tuple(mapping[name] for name in self._fields)
        except KeyError as exc:
            raise ValidationError(f"mapping is missing field {exc}") from None
        return Record(self, values)

    def __len__(self) -> int:
        return len(self._fields)

    def __contains__(self, field: str) -> bool:
        return field in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        return f"Schema({list(self._fields)!r})"


class Record:
    """A structured data quantum: a tuple of values plus a shared schema.

    Records hash and compare by value (schema included), so they can flow
    through shuffles, ``Distinct`` and join keys unchanged.  Records are
    immutable; :meth:`with_value` returns an updated copy, which keeps
    repair algorithms side-effect free.
    """

    __slots__ = ("schema", "values")

    def __init__(self, schema: Schema, values: tuple[Any, ...]):
        self.schema = schema
        self.values = values

    def __getitem__(self, field: str | int) -> Any:
        if isinstance(field, int):
            return self.values[field]
        return self.values[self.schema.index_of(field)]

    def get(self, field: str, default: Any = None) -> Any:
        """Return the value of ``field``, or ``default`` if absent."""
        if field in self.schema:
            return self.values[self.schema.index_of(field)]
        return default

    def with_value(self, field: str, value: Any) -> "Record":
        """Return a copy of this record with ``field`` replaced by ``value``."""
        index = self.schema.index_of(field)
        values = self.values[:index] + (value,) + self.values[index + 1 :]
        return Record(self.schema, values)

    def project(self, fields: Sequence[str]) -> "Record":
        """Return a record holding only ``fields`` (with a projected schema)."""
        schema = self.schema.project(fields)
        return Record(schema, tuple(self[f] for f in fields))

    def as_dict(self) -> dict[str, Any]:
        """Return the record as a plain ``dict`` (field → value)."""
        return dict(zip(self.schema.fields, self.values))

    def as_tuple(self) -> tuple[Any, ...]:
        """Return the raw value tuple."""
        return self.values

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Record)
            and self.schema == other.schema
            and self.values == other.values
        )

    def __lt__(self, other: "Record") -> bool:
        # Tuple-like ordering so sort-based operator variants (SortDistinct,
        # SortGroupBy) work on record datasets.
        if not isinstance(other, Record):
            return NotImplemented
        return (self.schema.fields, self.values) < (
            other.schema.fields,
            other.values,
        )

    def __hash__(self) -> int:
        return hash((self.schema, self.values))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k}={v!r}" for k, v in zip(self.schema.fields, self.values))
        return f"Record({pairs})"


def records_from_dicts(schema: Schema, rows: Iterable[dict[str, Any]]) -> list[Record]:
    """Convenience constructor: turn dict rows into :class:`Record` quanta."""
    return [schema.from_mapping(row) for row in rows]
