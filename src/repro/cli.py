"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — the platform roster, operator pool and profiles;
* ``demo`` — a one-minute platform-independence demonstration;
* ``sql`` — run a SQL query against CSV files registered as tables::

      python -m repro sql \\
          --table employees=people.csv \\
          "SELECT dept, COUNT(*) AS n FROM employees GROUP BY dept"

* ``explain`` — show the logical plan a SQL query translates to.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import RheemContext, __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "RHEEM reproduction: cross-platform data analytics on "
            "simulated processing platforms."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="platform roster and operator pool")
    commands.add_parser("demo", help="platform-independence demonstration")

    sql = commands.add_parser("sql", help="run a SQL query over CSV tables")
    sql.add_argument("query", help="the SELECT statement")
    sql.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=CSVFILE",
        help="register a CSV file as a table (repeatable)",
    )
    sql.add_argument(
        "--platform",
        default=None,
        help="pin a platform (default: cost-based choice)",
    )
    sql.add_argument(
        "--explain", action="store_true", help="print the plan, do not run"
    )
    return parser


# ----------------------------------------------------------------------
def command_info(ctx: RheemContext) -> int:
    print(f"repro {__version__} — RHEEM reproduction")
    print("\nplatforms:")
    for platform in ctx.platforms:
        kinds = sorted(platform._factories)
        print(
            f"  {platform.name:<10} profiles={sorted(platform.profiles)} "
            f"startup={platform.cost_model.startup_ms():.0f}ms "
            f"operators={len(kinds)}"
        )
    first = ctx.platforms[0]
    print("\nphysical operator kinds (first platform):")
    print("  " + ", ".join(sorted(first._factories)))
    return 0


def command_demo(ctx: RheemContext) -> int:
    lines = [
        "freedom is the recognition of necessity",
        "the road to freedom is long",
        "freedom necessity freedom",
    ]
    handle = (
        ctx.collection(lines)
        .flat_map(str.split)
        .map(lambda w: (w, 1))
        .reduce_by(lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]))
        .sort(lambda kv: (-kv[1], kv[0]))
    )
    print("word counts (optimizer's platform choice):")
    counts, metrics = handle.collect_with_metrics()
    for word, count in counts[:5]:
        print(f"  {word:<12} {count}")
    print("metrics:", metrics.summary())
    for platform in ("java", "spark"):
        pinned, pinned_metrics = handle.collect_with_metrics(platform=platform)
        marker = "identical" if pinned == counts else "DIFFERENT!"
        print(
            f"pinned to {platform:<6}: {marker}, "
            f"virtual={pinned_metrics.virtual_ms:.1f}ms"
        )
    return 0


def _load_csv_table(session, spec: str) -> None:
    from repro.apps.sql import SqlTranslationError
    from repro.core.types import Record, Schema

    if "=" not in spec:
        raise SystemExit(f"--table expects NAME=CSVFILE, got {spec!r}")
    name, path = spec.split("=", 1)
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle if line.strip()]
    if not lines:
        raise SystemExit(f"{path}: empty CSV")
    fields = [field.strip() for field in lines[0].split(",")]
    schema = Schema(fields)
    rows = []
    for line in lines[1:]:
        cells = [cell.strip() for cell in line.split(",")]
        rows.append(Record(schema, tuple(_coerce(cell) for cell in cells)))
    try:
        session.register_table(name, rows, schema)
    except SqlTranslationError as error:
        raise SystemExit(str(error)) from error


def _coerce(cell: str):
    for converter in (int, float):
        try:
            return converter(cell)
        except ValueError:
            continue
    if cell.upper() in ("TRUE", "FALSE"):
        return cell.upper() == "TRUE"
    return cell


def command_sql(ctx: RheemContext, args) -> int:
    from repro.apps.sql import SqlSession

    session = SqlSession(ctx)
    for spec in args.table:
        _load_csv_table(session, spec)
    if args.explain:
        print(session.explain(args.query))
        return 0
    rows, metrics = session.execute_with_metrics(
        args.query, platform=args.platform
    )
    if rows:
        header = rows[0].schema.fields
        widths = [
            max(len(str(field)), *(len(str(r[field])) for r in rows))
            for field in header
        ]
        print("  ".join(f.ljust(w) for f, w in zip(header, widths)))
        print("  ".join("-" * w for w in widths))
        for row in rows:
            print(
                "  ".join(str(row[f]).ljust(w) for f, w in zip(header, widths))
            )
    print(f"({len(rows)} rows, {metrics.summary()})")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    ctx = RheemContext()
    if args.command == "info":
        return command_info(ctx)
    if args.command == "demo":
        return command_demo(ctx)
    if args.command == "sql":
        return command_sql(ctx, args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
