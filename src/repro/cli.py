"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — the platform roster, operator pool and profiles;
* ``demo`` — a one-minute platform-independence demonstration;
* ``sql`` — run a SQL query against CSV files registered as tables::

      python -m repro sql \\
          --table employees=people.csv \\
          "SELECT dept, COUNT(*) AS n FROM employees GROUP BY dept"

* ``explain`` — the enumerator's decision trace for a query or the demo:
  alternatives considered with estimated costs, the winner and why, and
  the chosen execution plan::

      python -m repro explain demo
      python -m repro explain --table employees=people.csv \\
          "SELECT dept, COUNT(*) AS n FROM employees GROUP BY dept"

* ``trace-diff`` — align two JSONL span logs (``--trace-out x.jsonl``)
  and report per-layer virtual-time deltas, added/removed movement
  hops, and flipped enumerator candidate orderings::

      python -m repro trace-diff before.jsonl after.jsonl

* ``serve-metrics`` — run the demo workload, then expose its metrics
  registry as a Prometheus scrape endpoint (``GET /metrics``) on a
  stdlib HTTP server.  The exposition carries a ``repro_run_info``
  gauge (git sha + config epoch labels) so scrapes identify which
  build produced the numbers; with ``--profile`` the per-atom resource
  histograms are exposed too.

* ``serve`` — the multi-tenant serving daemon: ``POST /submit`` runs a
  seeded workload spec for the tenant named by the ``X-Repro-Tenant``
  header (per-tenant sessions, per-tenant metric labels);
  ``GET /status/<id>`` / ``GET /result/<id>`` fetch outcomes; repeat
  queries hit an LRU plan cache (fingerprint × calibration epoch ×
  config epoch) and skip enumeration entirely, while a process-wide
  slot pool shares each platform's concurrency budget across queries::

      python -m repro serve --port 9465 --cache-size 64

* ``report`` — the perf-regression observatory: compare the bench run
  history (``benchmarks/results/history.jsonl``) against the committed
  ``BENCH_*.json`` baselines and render a dashboard; ``--check`` turns
  it into a gate (best-of-N medians, per-metric tolerance bands, hard
  floors on byte-identity) that exits non-zero on regression::

      python -m repro report
      python -m repro report --check --best-of 3

* ``calibration`` — inspect (``show``) or drop (``reset``) the
  cross-run cardinality calibration store written by ``--calibrate``::

      python -m repro calibration show
      python -m repro calibration reset

* ``resume`` — continue a journaled run that crashed mid-plan: finished
  atoms are replayed from the write-ahead journal (and their outputs
  restored from the checkpoint store), only the missing suffix runs.
  The resumed run's BENCH line is byte-identical to an uninterrupted
  one::

      python -m repro demo --journal runs/ --run-id r1 --crash-at 2
      python -m repro resume r1 --journal runs/

``sql`` and ``demo`` accept ``--trace-out FILE`` (Chrome trace-event
JSON, or JSONL span log when the file ends in ``.jsonl``) and
``--flame`` (virtual-time flamegraph on stderr); executing commands
accept ``--parallelism N`` (run independent task atoms concurrently —
results and virtual time are identical at any setting),
``--execution-mode {thread,process}`` (which backend runs concurrent
atoms: pool threads, or forked worker processes with zero-copy
shared-memory transport for columnar channels — same results and
virtual time either way) and
``--calibrate [STORE.json]`` (load cross-run cardinality priors before
the run and fold the run's observations back in afterwards; the store
defaults to ``$REPRO_CALIBRATION_STORE`` or ``.repro-calibration.json``;
``REPRO_NO_CALIBRATION=1`` disables calibration entirely).

``demo`` additionally accepts the fault-tolerance flags: ``--journal
DIR`` (durable write-ahead journal + atom checkpoints under DIR),
``--run-id ID``, ``--deadline-ms MS`` (per-atom wall budget; an overrun
is charged to the ledger and escalated like a platform failure), and the
chaos switches ``--crash-at N`` / ``--crash-mode {before,after,torn}``
(hard-abort the process around journal commit N; exit code 3).
``REPRO_RESUME=1`` and ``REPRO_DEADLINE_MS`` are the environment
equivalents of ``resume`` semantics and ``--deadline-ms``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro import RheemContext, Tracer, __version__

#: default JSON snapshot path for the cross-run calibration store
DEFAULT_CALIBRATION_STORE = ".repro-calibration.json"


def _add_trace_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "write an end-to-end trace: Chrome trace-event JSON "
            "(chrome://tracing / Perfetto), or a JSONL span log when "
            "FILE ends in .jsonl"
        ),
    )
    subparser.add_argument(
        "--flame",
        action="store_true",
        help="print a virtual-time flamegraph of the run to stderr",
    )


def _add_parallelism_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--parallelism",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run up to N independent task atoms concurrently "
            "(default: $REPRO_PARALLELISM or 1; results and virtual "
            "time are identical at any setting)"
        ),
    )


def _add_execution_mode_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--execution-mode",
        choices=("thread", "process"),
        default=None,
        help=(
            "concurrent scheduler backend: 'thread' or 'process' "
            "(forked workers + zero-copy shared-memory columnar "
            "transport; default: $REPRO_EXECUTION_MODE or thread; "
            "results and virtual time are identical either way)"
        ),
    )


def _add_profile_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--profile",
        action="store_true",
        default=None,
        help=(
            "attach per-atom resource attribution (CPU vs wall, peak "
            "allocation, GC pauses, queue wait, channel bytes) to every "
            "atom span and the metrics registry (default: $REPRO_PROFILE "
            "or off; results and virtual time are unchanged)"
        ),
    )


def _add_calibrate_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--calibrate",
        nargs="?",
        const="",
        default=None,
        metavar="STORE.json",
        help=(
            "enable cross-run cardinality calibration: load learned "
            "priors from STORE.json (default: $REPRO_CALIBRATION_STORE "
            f"or {DEFAULT_CALIBRATION_STORE}) before the run and fold "
            "this run's observations back in afterwards"
        ),
    )


def _add_journal_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help=(
            "record a durable write-ahead run journal and atom "
            "checkpoints under DIR; a crashed run can be continued "
            "with 'repro resume'"
        ),
    )
    subparser.add_argument(
        "--run-id",
        default="demo",
        metavar="ID",
        help="name of the journaled run under --journal (default: demo)",
    )
    subparser.add_argument(
        "--crash-at",
        type=int,
        default=None,
        metavar="N",
        help=(
            "chaos switch: hard-abort the process around journal "
            "commit N (requires --journal); exits with code 3"
        ),
    )
    subparser.add_argument(
        "--crash-mode",
        choices=("before", "after", "torn"),
        default="after",
        help=(
            "where the simulated crash lands relative to commit N: "
            "before the record is written, after it is durable, or "
            "mid-write leaving a torn tail (default: after)"
        ),
    )
    subparser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "per-atom wall-clock budget (default: $REPRO_DEADLINE_MS "
            "or none); an overrun is charged to the ledger and "
            "escalated like a platform failure"
        ),
    )


def _calibration_store_path(explicit: str | None = None) -> str:
    """Resolve the calibration snapshot path (flag > env > default)."""
    if explicit:
        return explicit
    return (
        os.environ.get("REPRO_CALIBRATION_STORE", "").strip()
        or DEFAULT_CALIBRATION_STORE
    )


def _open_calibration_store(path: str):
    """Load the store snapshot at ``path``, or start a fresh one."""
    from repro.core.optimizer.calibration import CalibrationStore

    if os.path.exists(path):
        try:
            return CalibrationStore.load_json(path)
        except (OSError, ValueError, KeyError) as error:
            raise SystemExit(
                f"calibration store {path}: cannot load ({error})"
            ) from error
    return CalibrationStore()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "RHEEM reproduction: cross-platform data analytics on "
            "simulated processing platforms."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="platform roster and operator pool")
    demo = commands.add_parser(
        "demo", help="platform-independence demonstration"
    )
    _add_trace_flags(demo)
    _add_parallelism_flag(demo)
    _add_execution_mode_flag(demo)
    _add_profile_flag(demo)
    _add_calibrate_flag(demo)
    _add_journal_flags(demo)

    resume = commands.add_parser(
        "resume",
        help="continue a journaled run that crashed mid-plan",
    )
    resume.add_argument("run_id", help="run id of the journal to resume")
    resume.add_argument(
        "--journal",
        required=True,
        metavar="DIR",
        help="directory holding the run's journal and checkpoints",
    )
    _add_parallelism_flag(resume)
    _add_execution_mode_flag(resume)

    sql = commands.add_parser("sql", help="run a SQL query over CSV tables")
    sql.add_argument("query", help="the SELECT statement")
    sql.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=CSVFILE",
        help="register a CSV file as a table (repeatable)",
    )
    sql.add_argument(
        "--platform",
        default=None,
        help="pin a platform (default: cost-based choice)",
    )
    sql.add_argument(
        "--explain", action="store_true", help="print the plan, do not run"
    )
    _add_trace_flags(sql)
    _add_parallelism_flag(sql)
    _add_execution_mode_flag(sql)
    _add_profile_flag(sql)
    _add_calibrate_flag(sql)

    explain = commands.add_parser(
        "explain",
        help="enumerator decision trace for a SQL query (or 'demo')",
    )
    explain.add_argument(
        "target", help="a SELECT statement, or the literal 'demo'"
    )
    explain.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=CSVFILE",
        help="register a CSV file as a table (repeatable)",
    )
    _add_trace_flags(explain)
    _add_calibrate_flag(explain)

    calibration = commands.add_parser(
        "calibration",
        help="inspect or reset the cross-run cardinality calibration store",
    )
    calibration_sub = calibration.add_subparsers(
        dest="calibration_command", required=True
    )
    for name, blurb in (
        ("show", "print the learned per-kind/per-platform priors"),
        ("reset", "delete the store snapshot (forget all priors)"),
    ):
        sub = calibration_sub.add_parser(name, help=blurb)
        sub.add_argument(
            "--store",
            default=None,
            metavar="FILE",
            help=(
                "store snapshot path (default: $REPRO_CALIBRATION_STORE "
                f"or {DEFAULT_CALIBRATION_STORE})"
            ),
        )

    trace_diff = commands.add_parser(
        "trace-diff",
        help="align two JSONL span logs and report what changed "
        "(per-layer virtual-time deltas, movement hops, candidate flips)",
    )
    trace_diff.add_argument("trace_a", help="baseline trace (.jsonl)")
    trace_diff.add_argument("trace_b", help="comparison trace (.jsonl)")
    trace_diff.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="how many per-span moves / unmatched spans to list "
        "(default: 10)",
    )

    serve = commands.add_parser(
        "serve-metrics",
        help="run the demo pipeline, then serve its metrics registry "
        "as a Prometheus scrape endpoint (GET /metrics)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=9464,
        help="bind port (default: 9464; 0 picks a free port)",
    )
    _add_parallelism_flag(serve)
    _add_execution_mode_flag(serve)
    _add_profile_flag(serve)

    serve_daemon = commands.add_parser(
        "serve",
        help="multi-tenant serving daemon: POST /submit workload specs "
        "(tenant via the X-Repro-Tenant header), GET /status/<id>, "
        "/result/<id>, /healthz and per-tenant /metrics; repeat "
        "queries hit an LRU plan cache and skip enumeration",
    )
    serve_daemon.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve_daemon.add_argument(
        "--port", type=int, default=9465,
        help="bind port (default: 9465; 0 picks a free port)",
    )
    serve_daemon.add_argument(
        "--cache-size", type=int, default=64, metavar="N",
        help="plan-cache capacity in entries, LRU-evicted (default: 64)",
    )
    _add_parallelism_flag(serve_daemon)
    _add_execution_mode_flag(serve_daemon)

    report = commands.add_parser(
        "report",
        help="perf-regression observatory: compare the bench run history "
        "against the committed BENCH_*.json baselines",
    )
    report.add_argument(
        "--results",
        default=os.path.join("benchmarks", "results"),
        metavar="DIR",
        help="results directory holding history.jsonl "
        "(default: benchmarks/results)",
    )
    report.add_argument(
        "--baselines",
        default=None,
        metavar="DIR",
        help="directory holding the baseline BENCH_*.json payloads "
        "(default: the --results directory)",
    )
    report.add_argument(
        "--history",
        default=None,
        metavar="FILE",
        help="history file to compare (default: <results>/history.jsonl)",
    )
    report.add_argument(
        "--best-of",
        type=int,
        default=3,
        metavar="N",
        help="window size: compare medians over the last N runs per "
        "experiment (default: 3)",
    )
    report.add_argument(
        "--wall-tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="allowed fractional regression for wall-clock metrics "
        "(default: 0.5 — CI boxes are noisy)",
    )
    report.add_argument(
        "--virtual-tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="allowed fractional regression for virtual-time metrics "
        "(default: 0.02 — the bill is deterministic)",
    )
    report.add_argument(
        "--markdown", action="store_true", help="render markdown instead of text"
    )
    report.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the rendered report to FILE (CI artifact)",
    )
    report.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when any gate fails (perf regression)",
    )
    return parser


# ----------------------------------------------------------------------
# tracing plumbing shared by the commands
# ----------------------------------------------------------------------
def _make_tracer(args) -> Tracer | None:
    """A tracer when any trace output was requested, else None.

    Returning None keeps the no-op fast path: untraced runs never
    allocate a span.
    """
    if getattr(args, "trace_out", None) or getattr(args, "flame", False):
        return Tracer()
    return None


def _finish_trace(tracer: Tracer | None, args) -> None:
    """Write the requested trace artifacts after a traced run."""
    if tracer is None:
        return
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro.core.observability import write_chrome_trace, write_jsonl

        if trace_out.endswith(".jsonl"):
            write_jsonl(tracer, trace_out)
            flavour = "JSONL span log"
        else:
            write_chrome_trace(tracer, trace_out)
            flavour = "Chrome trace"
        print(
            f"[trace] {flavour}: {len(tracer.spans)} spans, "
            f"{tracer.total_virtual_ms():.1f} virtual ms -> {trace_out}",
            file=sys.stderr,
        )
    if getattr(args, "flame", False):
        from repro.core.observability import render_flamegraph

        print(render_flamegraph(tracer), file=sys.stderr)


# ----------------------------------------------------------------------
def command_info(ctx: RheemContext) -> int:
    print(f"repro {__version__} — RHEEM reproduction")
    print("\nplatforms:")
    for platform in ctx.platforms:
        kinds = sorted(platform._factories)
        print(
            f"  {platform.name:<10} profiles={sorted(platform.profiles)} "
            f"startup={platform.cost_model.startup_ms():.0f}ms "
            f"operators={len(kinds)}"
        )
    first = ctx.platforms[0]
    print("\nphysical operator kinds (first platform):")
    print("  " + ", ".join(sorted(first._factories)))
    return 0


def _demo_handle(ctx: RheemContext):
    """The demo word-count pipeline as a reusable plan handle."""
    lines = [
        "freedom is the recognition of necessity",
        "the road to freedom is long",
        "freedom necessity freedom",
    ]
    return (
        ctx.collection(lines)
        .flat_map(str.split)
        .map(lambda w: (w, 1))
        .reduce_by(lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]))
        .sort(lambda kv: (-kv[1], kv[0]))
    )


def _adaptive_demo_plan(ctx: RheemContext):
    """A deliberately mis-hinted pipeline for the calibration demo.

    The filter is hinted four orders of magnitude too selective, so the
    iterative tail is initially placed off a wildly wrong cardinality —
    the progressive executor replans it mid-run.  With learned priors
    the estimate is corrected up front and the replan disappears.
    """
    from repro import CostHints
    from repro.core.logical.operators import CollectSink

    dq = (
        ctx.collection(range(20_000))
        .filter(lambda x: True, hints=CostHints(selectivity=0.0001))
        .repeat(
            15,
            lambda s: s.map(lambda x: x + 1, hints=CostHints(udf_load=10.0)),
        )
    )
    dq.plan.add(CollectSink(), [dq.operator])
    return dq.plan


def command_demo(ctx: RheemContext, args=None) -> int:
    if args is not None and getattr(args, "journal", None):
        return _journaled_demo(ctx, args)
    if args is not None and getattr(args, "crash_at", None) is not None:
        raise SystemExit("--crash-at requires --journal")
    tracer = _make_tracer(args) if args is not None else None
    if tracer is not None:
        ctx.attach_tracer(tracer)
    handle = _demo_handle(ctx)
    print("word counts (optimizer's platform choice):")
    counts, metrics = handle.collect_with_metrics()
    for word, count in counts[:5]:
        print(f"  {word:<12} {count}")
    print("metrics:", metrics.summary())
    for platform in ("java", "spark"):
        pinned, pinned_metrics = handle.collect_with_metrics(platform=platform)
        marker = "identical" if pinned == counts else "DIFFERENT!"
        print(
            f"pinned to {platform:<6}: {marker}, "
            f"virtual={pinned_metrics.virtual_ms:.1f}ms"
        )
    if getattr(ctx, "calibration", None) is not None:
        # Adaptive pass: a mis-hinted pipeline whose replans shrink as
        # the store's priors sharpen run over run (the two-pass aha).
        result, replans = ctx.execute_adaptive(_adaptive_demo_plan(ctx))
        store = ctx.calibration
        print(
            "calibration: "
            f"replans={replans} "
            f"adaptive_virtual={result.metrics.virtual_ms:.1f}ms "
            f"samples={store.sample_count()} "
            f"priors_applied={store.priors_applied}"
        )
    if args is not None:
        _finish_trace(tracer, args)
    return 0


# ----------------------------------------------------------------------
# journaled execution: demo --journal and the resume command
# ----------------------------------------------------------------------
def _demo_execution(ctx: RheemContext):
    """The journaled variant of the demo: word-count with a decay tail.

    The iterative tail (halving each count twice, then re-sorting)
    splits the plan into three atoms — head, loop, final sort — so the
    chaos switches have several journal commit points to aim at.
    """
    from repro.core.logical.operators import CollectSink

    handle = (
        _demo_handle(ctx)
        .repeat(2, lambda s: s.map(lambda kv: (kv[0], kv[1] / 2)))
        .sort(lambda kv: (-kv[1], kv[0]))
    )
    handle.plan.add(CollectSink(), [handle.operator])
    physical = ctx.app_optimizer.optimize(handle.plan)
    return ctx.task_optimizer.optimize(physical)


def _journaled_runtime(
    rundir: str,
    run_id: str,
    *,
    crash_at: int | None = None,
    crash_mode: str = "after",
    workload: dict | None = None,
):
    """A RuntimeContext wired for durability under ``rundir``.

    Checkpoints go to a LocalFsStore at ``rundir/ckpt`` (namespaced by
    the run id), the write-ahead journal to ``rundir/<run_id>.journal``.
    Returns ``(runtime, journal)``; the caller owns closing the journal.
    """
    from repro.core.checkpoint import CheckpointManager
    from repro.core.recovery import CrashInjector, RunJournal
    from repro.core.runtime import RuntimeContext
    from repro.storage import Catalog, LocalFsStore

    os.makedirs(rundir, exist_ok=True)
    catalog = Catalog()
    catalog.register_store(
        LocalFsStore(root=os.path.join(rundir, "ckpt"))
    )
    checkpoint = CheckpointManager(catalog, "localfs", plan_key=run_id)
    journal = RunJournal(
        os.path.join(rundir, f"{run_id}.journal"),
        run_id=run_id,
        workload=workload,
    )
    runtime = RuntimeContext(
        checkpoint=checkpoint,
        journal=journal,
        crash_injector=(
            CrashInjector(crash_at, mode=crash_mode)
            if crash_at is not None
            else None
        ),
    )
    return runtime, journal


def _print_bench(result, execution) -> None:
    """One grep-able line fully determined by the (virtual) execution.

    ``digest`` fingerprints the result payload, ``virtual`` is the exact
    virtual-time repr, ``atoms`` counts the whole plan however it was
    satisfied — a resumed run must print the same line as an
    uninterrupted one.  Journal replay already restores the metric
    counters of the replayed prefix (``atoms_executed`` ends up at the
    full-plan value), so only checkpoint skips need adding on top.
    """
    import hashlib

    metrics = result.metrics
    digest = hashlib.sha256(
        repr(result.single).encode("utf-8")
    ).hexdigest()[:16]
    atoms = int(metrics.atoms_executed + metrics.atoms_skipped)
    print(f"BENCH digest={digest} virtual={metrics.virtual_ms!r} atoms={atoms}")


def _journaled_demo(ctx: RheemContext, args) -> int:
    from repro.core.recovery import SimulatedCrash

    execution = _demo_execution(ctx)
    runtime, journal = _journaled_runtime(
        args.journal,
        args.run_id,
        crash_at=args.crash_at,
        crash_mode=args.crash_mode,
        workload={"kind": "demo"},
    )
    try:
        result = ctx.executor.execute(execution, runtime)
    except SimulatedCrash:
        print(
            f"simulated crash around journal commit {args.crash_at} "
            f"(mode={args.crash_mode}); continue with: "
            f"repro resume {args.run_id} --journal {args.journal}",
            file=sys.stderr,
        )
        return 3
    finally:
        journal.close()
    metrics = result.metrics
    if metrics.resumes:
        print(
            f"[resume] {int(metrics.atoms_restored)} atom(s) replayed "
            "from the journal",
            file=sys.stderr,
        )
    _print_bench(result, execution)
    return 0


def command_resume(args) -> int:
    from repro.core.recovery import RunJournal

    path = os.path.join(args.journal, f"{args.run_id}.journal")
    if not os.path.exists(path):
        raise SystemExit(
            f"no journal for run {args.run_id!r} under {args.journal}"
        )
    header, _records, torn = RunJournal(path).load()
    if header is None:
        raise SystemExit(
            f"{path}: journal header unreadable; cannot resume"
        )
    workload = (header.get("workload") or {}).get("kind")
    if workload != "demo":
        raise SystemExit(
            f"{path}: workload {workload!r} cannot be rebuilt; "
            "only 'demo' journals are resumable from the CLI"
        )
    ctx = RheemContext(
        resume=True,
        parallelism=args.parallelism or header.get("parallelism") or None,
        execution_mode=(
            args.execution_mode or header.get("execution_mode") or None
        ),
    )
    execution = _demo_execution(ctx)
    runtime, journal = _journaled_runtime(
        args.journal, args.run_id, workload={"kind": workload}
    )
    try:
        result = ctx.executor.execute(execution, runtime)
    finally:
        journal.close()
    metrics = result.metrics
    restored = int(metrics.atoms_restored)
    torn_note = f", {torn} torn record(s) discarded" if torn else ""
    print(
        f"[resume] run {args.run_id!r}: {restored} atom(s) replayed "
        f"from the journal{torn_note}",
        file=sys.stderr,
    )
    _print_bench(result, execution)
    return 0


def _load_csv_table(session, spec: str) -> None:
    from repro.apps.sql import SqlTranslationError
    from repro.core.types import Record, Schema

    if "=" not in spec:
        raise SystemExit(f"--table expects NAME=CSVFILE, got {spec!r}")
    name, path = spec.split("=", 1)
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle if line.strip()]
    if not lines:
        raise SystemExit(f"{path}: empty CSV")
    fields = [field.strip() for field in lines[0].split(",")]
    schema = Schema(fields)
    rows = []
    for line in lines[1:]:
        cells = [cell.strip() for cell in line.split(",")]
        rows.append(Record(schema, tuple(_coerce(cell) for cell in cells)))
    try:
        session.register_table(name, rows, schema)
    except SqlTranslationError as error:
        raise SystemExit(str(error)) from error


def _coerce(cell: str):
    for converter in (int, float):
        try:
            return converter(cell)
        except ValueError:
            continue
    if cell.upper() in ("TRUE", "FALSE"):
        return cell.upper() == "TRUE"
    return cell


def command_sql(ctx: RheemContext, args) -> int:
    from repro.apps.sql import SqlSession

    tracer = _make_tracer(args)
    if tracer is not None:
        ctx.attach_tracer(tracer)
    session = SqlSession(ctx)
    for spec in args.table:
        _load_csv_table(session, spec)
    if args.explain:
        print(session.explain(args.query))
        return 0
    rows, metrics = session.execute_with_metrics(
        args.query, platform=args.platform
    )
    if rows:
        header = rows[0].schema.fields
        widths = [
            max(len(str(field)), *(len(str(r[field])) for r in rows))
            for field in header
        ]
        print("  ".join(f.ljust(w) for f, w in zip(header, widths)))
        print("  ".join("-" * w for w in widths))
        for row in rows:
            print(
                "  ".join(str(row[f]).ljust(w) for f, w in zip(header, widths))
            )
    print(f"({len(rows)} rows, {metrics.summary()})")
    _finish_trace(tracer, args)
    return 0


# ----------------------------------------------------------------------
# explain: the enumerator's decision trace
# ----------------------------------------------------------------------
def _optimize_only(ctx: RheemContext, handle, tracer: Tracer):
    """Run both optimizer layers on ``handle``'s plan without executing.

    Mirrors ``DataQuanta.collect_with_metrics``: a collect sink is
    appended for optimization and removed afterwards so the handle stays
    reusable.
    """
    from repro.core.logical.operators import CollectSink

    sink = CollectSink()
    handle._builder.plan.add(sink, [handle._op])
    try:
        physical = ctx.app_optimizer.optimize(handle._builder.plan,
                                              tracer=tracer)
        return ctx.task_optimizer.optimize(physical, tracer=tracer)
    finally:
        handle._builder.plan.graph.remove_unary(sink)


#: physical operator kinds with a batch fast path, and the kernel that
#: serves them when the compiled data path is enabled (see
#: ``repro.core.physical.compiled`` / ``kernels``)
_BATCH_KERNELS = {
    "map": "map.batch",
    "filter": "filter.batch",
    "flatmap": "flatmap.batch",
    "groupby.hash": "groupby.hash.batch",
    "reduceby.hash": "reduceby.hash.batch",
    "reduce.global": "reduce.global.batch",
    "join.hash": "join.hash.batch",
    "join.broadcast": "join.hash.batch",
    "cross": "cross.batch",
    "distinct.hash": "distinct.hash.batch",
}


def _render_datapath_report(execution) -> list[str]:
    """Which kernel serves each operator of the chosen plan, and why.

    Fused pipelines report their stage shape and summed UDF load (the
    quantity the ``fused.narrow`` work-unit model charges per quantum);
    standalone operators report the batch kernel that will run them.
    """
    from repro.core.execution.plan import LoopAtom
    from repro.core.physical.compiled import KILL_SWITCH, kernels_enabled

    enabled = kernels_enabled()
    if enabled:
        mode = "compiled (single-pass fused closures + batch kernels)"
    else:
        mode = f"interpreted fallback ({KILL_SWITCH} is set)"
    lines = [f"data path: {mode}"]

    def walk(plan, indent: str) -> None:
        for atom in plan.atoms:
            if isinstance(atom, LoopAtom):
                lines.append(
                    f"{indent}loop#{atom.id}@{atom.platform.name}:"
                )
                walk(atom.body_plan, indent + "  ")
                continue
            for op in atom.fragment.topological_order():
                if op.kind == "fused.narrow":
                    head = (
                        "streams source, " if op.source_stage is not None
                        else ""
                    )
                    passes = (
                        "one compiled pass" if enabled else "per-stage loops"
                    )
                    lines.append(
                        f"{indent}atom#{atom.id}@{atom.platform.name}: "
                        f"fused[{op.shape}] -> {passes} ({head}"
                        f"{len(op.narrow_stages)} stage(s), "
                        f"udf_load={op.hints.udf_load:g})"
                    )
                elif op.kind in _BATCH_KERNELS:
                    kernel = (
                        _BATCH_KERNELS[op.kind] if enabled
                        else "per-quantum loop"
                    )
                    lines.append(
                        f"{indent}atom#{atom.id}@{atom.platform.name}: "
                        f"{op.describe()} -> {kernel}"
                    )

    walk(execution, "  ")
    if len(lines) == 1:
        lines.append("  (no fusable or batch-kernel operators in this plan)")
    return lines


def _render_columnar_report(ctx: RheemContext, execution) -> list[str]:
    """Per-boundary columnar decisions + profiled wall-clock prediction.

    Mirrors the kernel/fusion report for the columnar data path: every
    channel/loop-state boundary of the chosen plan is labelled
    ``packed + elided`` (consumer reads the buffers in place),
    ``packed + egested`` (with the rejection reason), or ``rows``
    (columnar transport off).  When any boundary is elide-eligible, a
    quick datapath micro-profile prices the row path against the
    columnar-native path from *measured* kernel rates — the prediction
    the kernel-aware cost model feeds the enumerator, not a hard-coded
    discount.
    """
    boundaries = getattr(execution, "columnar_boundaries", [])
    if not boundaries:
        return []
    columnar_on = bool(getattr(ctx.executor, "columnar", False))
    native_on = columnar_on and bool(
        getattr(ctx.executor, "columnar_native", False)
    )
    if not columnar_on:
        mode = "off (set REPRO_COLUMNAR=1 to pack numeric hand-offs)"
    elif not native_on:
        mode = "packed, egest-per-consumer (REPRO_COLUMNAR_NATIVE=0)"
    else:
        mode = "native (eligible consumers read column buffers in place)"
    lines = [f"columnar data path: {mode}", "  boundaries:"]
    for record in boundaries:
        where = (
            f"loop#{record['atom']} state"
            if record["boundary"] == "loop-state"
            else f"op#{record['producer']} -> atom#{record['atom']} "
            f"op#{record['consumer']} {record['consumer_kind']}"
        )
        if not columnar_on:
            decision = "rows (columnar transport off)"
        elif record["eligible"] and native_on:
            decision = f"packed + elided ({record['reason']})"
        elif record["eligible"]:
            decision = (
                f"packed + egested (native consumption disabled; "
                f"would elide: {record['reason']})"
            )
        else:
            decision = f"packed + egested ({record['reason']})"
        lines.append(f"    {where}: {decision}")
    eligible = [b for b in boundaries if b["eligible"]]
    if not eligible:
        return lines
    from repro.core.optimizer.profiler import CostProfiler

    model = CostProfiler(sizes=(1_000, 8_000)).profile_datapath().kernel_model()
    row_total = columnar_total = 0.0
    for record in eligible:
        card = float(record.get("card") or 0.0)
        predicted = model.predict_boundary(record["consumer_kind"], card)
        if predicted is None:
            # No profiled consumer stage (e.g. loop state): the win is
            # the elided unpack itself.
            predicted = (model.unpack_ms(card), 0.0)
        row_total += predicted[0]
        columnar_total += predicted[1]
    direction = "columnar" if columnar_total < row_total else "row"
    lines.append(
        "  predicted from profiled kernel rates "
        f"({len(eligible)} eligible boundarie(s), estimated cards):"
    )
    lines.append(f"    row path       {row_total:10.3f} ms wall")
    lines.append(f"    columnar path  {columnar_total:10.3f} ms wall")
    if row_total > 0 and columnar_total > 0:
        lines.append(
            f"    -> predicted winner: {direction} "
            f"({row_total / columnar_total:.2f}x)"
        )
    else:
        lines.append(f"    -> predicted winner: {direction}")
    return lines


def _render_calibration_report(ctx: RheemContext, execution) -> list[str]:
    """The calibration section of ``repro explain``.

    Shows which estimates the learned priors moved for *this* plan, and
    the store's prior table (kind/platform, sample counts, corrections,
    p50/p90 residual factors).  Empty when no store is attached.
    """
    store = getattr(ctx, "calibration", None)
    if store is None:
        return []
    from repro.core.optimizer.calibration import (
        KILL_SWITCH,
        calibration_enabled,
    )

    lines = ["calibration:"]
    if not calibration_enabled():
        lines.append(f"  disabled ({KILL_SWITCH} is set)")
        return lines
    corrections = getattr(execution, "estimate_corrections", {})
    kinds = getattr(execution, "estimate_kinds", {})
    if corrections:
        lines.append("  corrections applied to this plan:")
        for op_id in sorted(corrections):
            lines.append(
                f"    op#{op_id} {kinds.get(op_id, '?')}: "
                f"estimate x{corrections[op_id]:.3g}"
            )
    else:
        lines.append(
            "  no corrections applied to this plan "
            "(cold store or converged priors)"
        )
    lines.extend("  " + line for line in store.report().splitlines())
    return lines


def _render_decision_trace(
    tracer: Tracer, execution, ctx: RheemContext | None = None
) -> str:
    """Human-readable enumerator decision trace from the recorded spans."""
    lines: list[str] = []
    for app_span in tracer.find("optimize.application"):
        lines.append(
            "application optimizer: "
            f"{app_span.attributes.get('logical_operators', '?')} logical "
            f"-> {app_span.attributes.get('physical_operators', '?')} "
            "physical operators"
        )
    for enum_span in tracer.find("optimize.enumerate"):
        attrs = enum_span.attributes
        lines.append(
            f"enumerator: {attrs.get('operators', '?')} operators, "
            f"{attrs.get('candidates', '?')} platform-subset "
            "candidate(s) considered:"
        )
        for candidate in tracer.children(enum_span):
            if candidate.name != "candidate":
                continue
            cattrs = candidate.attributes
            platforms = "+".join(cattrs.get("platforms", ()))
            if cattrs.get("feasible"):
                verdict = f"est={cattrs.get('estimated_cost_ms', 0.0):.3f}ms"
            else:
                verdict = f"infeasible ({cattrs.get('why', 'unknown')})"
            lines.append(f"  - {{{platforms}}}: {verdict}")
        winner = attrs.get("winner")
        if winner is not None:
            lines.append(
                f"  winner: {{{'+'.join(winner)}}} "
                f"est={attrs.get('winner_cost', 0.0):.3f}ms"
            )
        lines.append(f"  reason: {attrs.get('reason', 'n/a')}")
        assignment = attrs.get("assignment")
        if assignment:
            lines.append("operator assignment:")
            lines.extend(f"  {entry}" for entry in assignment)
    lines.append("execution plan (task atoms):")
    lines.extend(f"  {line}" for line in execution.explain().splitlines())
    lines.extend(_render_datapath_report(execution))
    if ctx is not None:
        lines.extend(_render_columnar_report(ctx, execution))
        lines.extend(_render_calibration_report(ctx, execution))
    return "\n".join(lines)


def command_explain(ctx: RheemContext, args) -> int:
    tracer = Tracer()
    ctx.attach_tracer(tracer)
    if args.target == "demo":
        handle = _demo_handle(ctx)
    else:
        from repro.apps.sql import SqlSession

        session = SqlSession(ctx)
        for spec in args.table:
            _load_csv_table(session, spec)
        try:
            handle = session.plan(args.target)
        except Exception as error:
            raise SystemExit(str(error)) from error
    execution = _optimize_only(ctx, handle, tracer)
    print(_render_decision_trace(tracer, execution, ctx=ctx))
    _finish_trace(tracer, args)
    return 0


def command_calibration(args) -> int:
    """``repro calibration show|reset`` over the JSON store snapshot."""
    path = _calibration_store_path(args.store)
    if args.calibration_command == "reset":
        if os.path.exists(path):
            os.remove(path)
            print(f"calibration store {path}: removed")
        else:
            print(f"calibration store {path}: nothing to reset")
        return 0
    # show
    if not os.path.exists(path):
        print(f"calibration store {path}: empty (no snapshot yet)")
        return 0
    store = _open_calibration_store(path)
    print(f"calibration store {path}:")
    print(store.report())
    return 0


def command_trace_diff(args) -> int:
    from repro.core.observability import diff_files
    from repro.errors import ValidationError

    try:
        print(diff_files(args.trace_a, args.trace_b, top=args.top))
    except (OSError, ValidationError) as error:
        raise SystemExit(str(error)) from error
    return 0


def command_serve_metrics(ctx: RheemContext, args) -> int:
    """Run the demo workload, then serve its registry over HTTP."""
    from repro.core.observability import MetricsHTTPServer, set_build_info
    from repro.core.observability.report import repo_git_sha
    from repro.core.recovery import config_epoch

    tracer = Tracer()
    ctx.attach_tracer(tracer)
    handle = _demo_handle(ctx)
    _, metrics = handle.collect_with_metrics()
    print("demo run:", metrics.summary(), file=sys.stderr)
    # Build-identity gauge: scrapes must be attributable to the commit
    # and config epoch that produced the numbers.  Idempotent on
    # purpose: restarting the server in one process (or against a
    # shared registry) must replace the info series, not accrete a
    # stale second one.
    set_build_info(
        tracer.registry,
        git_sha=repo_git_sha() or "unknown",
        config_epoch=config_epoch(
            columnar=ctx.executor.columnar,
            columnar_native=ctx.executor.columnar_native,
            calibration=ctx.executor.calibration is not None,
        ),
    )
    server = MetricsHTTPServer(tracer.registry, host=args.host, port=args.port)
    with server:
        print(
            f"serving Prometheus metrics on {server.url} (Ctrl-C to stop)",
            file=sys.stderr,
        )
        try:
            while True:
                import time

                time.sleep(3600)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            print("shutting down", file=sys.stderr)
    return 0


def command_serve(args) -> int:
    """``repro serve``: the multi-tenant serving daemon."""
    import signal
    import time

    from repro.core.serving import ServingDaemon

    daemon = ServingDaemon(
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        parallelism=args.parallelism,
        execution_mode=args.execution_mode,
    )

    def _shutdown(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    # SIGTERM (and SIGINT, which shells set to SIG_IGN for background
    # jobs) both become the same graceful-shutdown path as Ctrl-C.
    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    with daemon:
        print(
            f"serving queries on {daemon.url} "
            f"(POST /submit, tenant header {'X-Repro-Tenant'}; "
            "Ctrl-C to stop)",
            file=sys.stderr,
        )
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
    return 0


def command_report(args) -> int:
    """``repro report``: the perf-regression observatory."""
    from repro.core.observability.report import (
        DEFAULT_VIRTUAL_TOLERANCE,
        DEFAULT_WALL_TOLERANCE,
        build_report,
        load_baselines,
        load_history,
        render_report,
    )

    results_dir = args.results
    baselines = load_baselines(args.baselines or results_dir)
    if not baselines:
        raise SystemExit(
            f"no BENCH_*.json baselines under "
            f"{args.baselines or results_dir!r}"
        )
    history_path = args.history or os.path.join(results_dir, "history.jsonl")
    history, skipped = load_history(history_path)
    report = build_report(
        baselines,
        history,
        best_of=max(1, args.best_of),
        wall_tolerance=(
            args.wall_tolerance
            if args.wall_tolerance is not None
            else DEFAULT_WALL_TOLERANCE
        ),
        virtual_tolerance=(
            args.virtual_tolerance
            if args.virtual_tolerance is not None
            else DEFAULT_VIRTUAL_TOLERANCE
        ),
        skipped_lines=skipped,
    )
    rendered = render_report(report, markdown=args.markdown)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
    if args.check:
        regressions = report.regressions
        if regressions:
            print(
                f"perf check FAILED: {len(regressions)} regression(s)",
                file=sys.stderr,
            )
            return 1
        print("perf check passed", file=sys.stderr)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "trace-diff":
        return command_trace_diff(args)
    if args.command == "calibration":
        return command_calibration(args)
    if args.command == "resume":
        return command_resume(args)
    if args.command == "report":
        return command_report(args)
    if args.command == "serve":
        return command_serve(args)

    store = None
    store_path = None
    if getattr(args, "calibrate", None) is not None:
        store_path = _calibration_store_path(args.calibrate or None)
        store = _open_calibration_store(store_path)
    ctx = RheemContext(
        parallelism=getattr(args, "parallelism", None),
        execution_mode=getattr(args, "execution_mode", None),
        calibrate=store,
        deadline_ms=getattr(args, "deadline_ms", None),
        profile=getattr(args, "profile", None),
    )
    if args.command == "info":
        return command_info(ctx)
    if args.command == "demo":
        code = command_demo(ctx, args)
    elif args.command == "sql":
        code = command_sql(ctx, args)
    elif args.command == "explain":
        code = command_explain(ctx, args)
    elif args.command == "serve-metrics":
        return command_serve_metrics(ctx, args)
    else:  # pragma: no cover
        raise SystemExit(f"unknown command {args.command!r}")
    if store is not None and store_path is not None and code == 0:
        store.save_json(store_path)
        print(
            f"[calibration] {store.sample_count()} samples "
            f"-> {store_path}",
            file=sys.stderr,
        )
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
