"""Deterministic random-number helpers.

All synthetic workload generators in this repository take explicit seeds so
experiments are reproducible run-to-run.  These helpers centralise seed
derivation so that two generators fed the same master seed do not produce
correlated streams.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, *labels: object) -> int:
    """Derive a child seed from ``master_seed`` and a sequence of labels.

    The derivation hashes the labels, so generators labelled differently
    receive statistically independent streams even for adjacent seeds.
    """
    payload = repr((master_seed,) + labels).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(master_seed: int, *labels: object) -> random.Random:
    """Create a :class:`random.Random` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(master_seed, *labels))
