"""Iteration helpers used across platforms and storage codecs."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")


def batched(items: Iterable[T], batch_size: int) -> Iterator[list[T]]:
    """Yield successive lists of at most ``batch_size`` items.

    >>> list(batched([1, 2, 3, 4, 5], batch_size=2))
    [[1, 2], [3, 4], [5]]
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    current: list[T] = []
    for item in items:
        current.append(item)
        if len(current) == batch_size:
            yield current
            current = []
    if current:
        yield current


def count_iter(items: Iterable[object]) -> int:
    """Count items in an iterable without materialising it."""
    return sum(1 for _ in items)


def peek(items: Sequence[T], n: int = 5) -> list[T]:
    """Return up to ``n`` leading items of a sequence (for logging/preview)."""
    return list(items[:n])


def split_evenly(items: Sequence[T], parts: int) -> list[list[T]]:
    """Split a sequence into ``parts`` contiguous chunks of near-equal size.

    Chunks differ in length by at most one; empty chunks are produced when
    there are fewer items than parts, so the result always has ``parts``
    entries.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    total = len(items)
    base, extra = divmod(total, parts)
    chunks: list[list[T]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks
