"""Small shared utilities (deterministic RNG helpers, iteration tools)."""

from repro.util.iterators import batched, count_iter, peek, split_evenly
from repro.util.rng import derive_seed, make_rng

__all__ = [
    "batched",
    "count_iter",
    "derive_seed",
    "make_rng",
    "peek",
    "split_evenly",
]
