"""Linear and logistic regression on the Initialize/Process/Loop template.

Both use full-batch gradient descent through the same RHEEM dataflow as
the SVM — the point of the template is precisely that "users implement
algorithms such as SVM, K-means, and linear/logistic regression with
them" (paper Example 1).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.apps.ml.operators import Initialize, IterativeTemplate, Loop, Process
from repro.core.context import RheemContext
from repro.core.metrics import ExecutionMetrics
from repro.errors import ValidationError

#: regression state: (weights, bias, iteration)
RegState = tuple[tuple[float, ...], float, int]


class _GradientDescentModel:
    """Shared machinery: batch gradient descent over (x, y) points."""

    #: human-readable name used in operator labels
    algorithm = "GD"

    def __init__(self, iterations: int = 100, learning_rate: float = 0.5):
        if iterations <= 0:
            raise ValidationError(f"iterations must be positive, got {iterations}")
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.weights: tuple[float, ...] | None = None
        self.bias: float = 0.0
        self.metrics: ExecutionMetrics | None = None

    # subclasses provide the residual of one point under the current model
    def _residual(self, prediction: float, target: float) -> float:
        raise NotImplementedError

    def _raw_prediction(self, weights, bias, x) -> float:
        return sum(w * v for w, v in zip(weights, x)) + bias

    def _initialize(self, data) -> RegState:
        dim = len(data[0][0])
        return (tuple(0.0 for _ in range(dim)), 0.0, 1)

    def _contribute(self, state: RegState, point):
        weights, bias, _ = state
        x, y = point
        residual = self._residual(self._raw_prediction(weights, bias, x), y)
        return (tuple(residual * v for v in x), residual, 1)

    @staticmethod
    def _combine(a, b):
        gxa, gba, na = a
        gxb, gbb, nb = b
        return (tuple(u + v for u, v in zip(gxa, gxb)), gba + gbb, na + nb)

    def _update(self, state: RegState, combined) -> RegState:
        weights, bias, t = state
        grad_w, grad_b, count = combined
        eta = self.learning_rate
        new_weights = tuple(w + eta * g / count for w, g in zip(weights, grad_w))
        return (new_weights, bias + eta * grad_b / count, t + 1)

    def fit(
        self,
        ctx: RheemContext,
        data: Sequence[tuple[tuple[float, ...], float]],
        platform: str | None = None,
        columnar: bool | None = None,
    ):
        """Train on ``data`` through the RHEEM template.

        ``columnar=True`` opts eligible hand-offs into the
        struct-of-arrays channel layout (see ``core.channels``).
        """
        data = list(data)
        if not data:
            raise ValidationError("cannot fit on an empty dataset")
        dim = len(data[0][0])
        template = IterativeTemplate(
            Initialize(self._initialize, name=f"{self.algorithm}.Initialize"),
            Process(
                self._contribute,
                self._combine,
                self._update,
                name=f"{self.algorithm}.Process",
                udf_load=2.0 * dim,
            ),
            Loop(iterations=self.iterations, name=f"{self.algorithm}.Loop"),
        )
        result = template.fit(ctx, data, platform=platform, columnar=columnar)
        self.weights, self.bias, _ = result.state
        self.metrics = result.metrics
        return self


class LinearRegression(_GradientDescentModel):
    """Least-squares regression (gradient of squared error)."""

    algorithm = "LinReg"

    def _residual(self, prediction: float, target: float) -> float:
        return target - prediction

    def predict(self, x: tuple[float, ...]) -> float:
        """Predicted continuous value for one point."""
        if self.weights is None:
            raise ValidationError("model is not fitted")
        return self._raw_prediction(self.weights, self.bias, x)

    def mse(self, data: Sequence[tuple[tuple[float, ...], float]]) -> float:
        """Mean squared error over ``data``."""
        if not data:
            raise ValidationError("mse over an empty dataset is undefined")
        return sum((self.predict(x) - y) ** 2 for x, y in data) / len(data)


class LogisticRegression(_GradientDescentModel):
    """Binary logistic regression over labels in {0, 1}."""

    algorithm = "LogReg"

    def _residual(self, prediction: float, target: float) -> float:
        return target - 1.0 / (1.0 + math.exp(-prediction))

    def predict_proba(self, x: tuple[float, ...]) -> float:
        """P(label = 1) for one point."""
        if self.weights is None:
            raise ValidationError("model is not fitted")
        return 1.0 / (1.0 + math.exp(-self._raw_prediction(self.weights, self.bias, x)))

    def predict(self, x: tuple[float, ...]) -> int:
        """Hard 0/1 prediction for one point."""
        return 1 if self.predict_proba(x) >= 0.5 else 0

    def accuracy(self, data: Sequence[tuple[tuple[float, ...], int]]) -> float:
        """Fraction of correct hard predictions."""
        if not data:
            raise ValidationError("accuracy over an empty dataset is undefined")
        return sum(1 for x, y in data if self.predict(x) == y) / len(data)
