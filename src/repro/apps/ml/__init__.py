"""Machine-learning application on the RHEEM abstraction.

Implements the paper's Example 1 operator template — ``Initialize`` (set
up algorithm state), ``Process`` (per-iteration computation over the
data) and ``Loop`` (stopping condition) — and three algorithms expressed
through it: SVM (Figure 2's workload), K-means and linear/logistic
regression.  All data-parallel work runs through RHEEM operators, so each
algorithm executes unchanged on every processing platform.
"""

from repro.apps.ml.datagen import (
    dump_libsvm,
    linear_data,
    linearly_separable,
    parse_libsvm,
    sample_blobs,
)
from repro.apps.ml.kmeans import KMeans
from repro.apps.ml.operators import Initialize, IterativeTemplate, Loop, Process
from repro.apps.ml.regression import LinearRegression, LogisticRegression
from repro.apps.ml.svm import SVMClassifier

__all__ = [
    "Initialize",
    "IterativeTemplate",
    "KMeans",
    "LinearRegression",
    "LogisticRegression",
    "Loop",
    "Process",
    "SVMClassifier",
    "dump_libsvm",
    "linear_data",
    "linearly_separable",
    "parse_libsvm",
    "sample_blobs",
]
