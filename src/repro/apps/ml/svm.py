"""Linear SVM trained by batch subgradient descent — Figure 2's workload.

Each iteration computes the full-batch subgradient of the regularised
hinge loss through the RHEEM dataflow (cross state with points, map to
per-point subgradients, global reduce, update), so the same plan runs on
the in-process platform and on the simulated Spark — the comparison the
paper's Figure 2 makes.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.ml.datagen import LabelledPoint
from repro.apps.ml.operators import Initialize, IterativeTemplate, Loop, Process
from repro.core.context import RheemContext
from repro.core.metrics import ExecutionMetrics
from repro.errors import ValidationError

#: SVM training state: (weights, bias, iteration counter)
SvmState = tuple[tuple[float, ...], float, int]


class SVMClassifier:
    """Linear SVM with hinge loss and L2 regularisation."""

    def __init__(
        self,
        iterations: int = 100,
        regularization: float = 0.01,
        dim: int | None = None,
    ):
        if iterations <= 0:
            raise ValidationError(f"iterations must be positive, got {iterations}")
        self.iterations = iterations
        self.regularization = regularization
        self.dim = dim
        self.weights: tuple[float, ...] | None = None
        self.bias: float = 0.0
        self.metrics: ExecutionMetrics | None = None

    # ------------------------------------------------------------------
    # template pieces
    # ------------------------------------------------------------------
    def _initialize(self, data: list[LabelledPoint]) -> SvmState:
        dim = self.dim if self.dim is not None else len(data[0][0])
        return (tuple(0.0 for _ in range(dim)), 0.0, 1)

    @staticmethod
    def _contribute(state: SvmState, point: LabelledPoint):
        """Per-point hinge subgradient (zero when the margin is met)."""
        weights, bias, _ = state
        x, y = point
        margin = y * (sum(w * v for w, v in zip(weights, x)) + bias)
        if margin >= 1.0:
            return (tuple(0.0 for _ in x), 0.0, 1)
        return (tuple(y * v for v in x), float(y), 1)

    @staticmethod
    def _combine(a, b):
        ga, gb_a, na = a
        gb, gb_b, nb = b
        return (tuple(u + v for u, v in zip(ga, gb)), gb_a + gb_b, na + nb)

    def _update(self, state: SvmState, combined) -> SvmState:
        weights, bias, t = state
        grad_w, grad_b, count = combined
        eta = 1.0 / (self.regularization * t + 10.0)
        scale = 1.0 - eta * self.regularization
        new_weights = tuple(
            scale * w + eta * g / count for w, g in zip(weights, grad_w)
        )
        new_bias = bias + eta * grad_b / count
        return (new_weights, new_bias, t + 1)

    # ------------------------------------------------------------------
    def fit(
        self,
        ctx: RheemContext,
        data: Sequence[LabelledPoint],
        platform: str | None = None,
        columnar: bool | None = None,
    ) -> "SVMClassifier":
        """Train on ``data`` (optionally pinned to one platform).

        ``columnar=True`` opts eligible hand-offs into the
        struct-of-arrays channel layout (see ``core.channels``).
        """
        data = list(data)
        if not data:
            raise ValidationError("cannot train an SVM on an empty dataset")
        dim = self.dim if self.dim is not None else len(data[0][0])
        template = IterativeTemplate(
            Initialize(self._initialize, name="SVM.Initialize"),
            Process(
                self._contribute,
                self._combine,
                self._update,
                name="SVM.Process",
                udf_load=2.0 * dim,
            ),
            Loop(iterations=self.iterations, name="SVM.Loop"),
        )
        result = template.fit(ctx, data, platform=platform, columnar=columnar)
        self.weights, self.bias, _ = result.state
        self.metrics = result.metrics
        return self

    # ------------------------------------------------------------------
    def decision_function(self, x: tuple[float, ...]) -> float:
        """Signed distance proxy for one point."""
        if self.weights is None:
            raise ValidationError("classifier is not fitted")
        return sum(w * v for w, v in zip(self.weights, x)) + self.bias

    def predict(self, x: tuple[float, ...]) -> int:
        """Predict the ±1 label of one point."""
        return 1 if self.decision_function(x) >= 0 else -1

    def accuracy(self, data: Sequence[LabelledPoint]) -> float:
        """Fraction of correctly classified points."""
        if not data:
            raise ValidationError("accuracy over an empty dataset is undefined")
        correct = sum(1 for x, y in data if self.predict(x) == y)
        return correct / len(data)
