"""K-means clustering on the Initialize/Process/Loop template.

The paper's own illustration of the template: ``Initialize`` seeds
centroids, ``Process`` assigns points to their nearest centroid and
recomputes means, ``Loop`` stops when the centroids move less than a
tolerance (or after a fixed number of rounds).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.apps.ml.operators import Initialize, IterativeTemplate, Loop, Process
from repro.core.context import RheemContext
from repro.core.metrics import ExecutionMetrics
from repro.errors import ValidationError
from repro.util.rng import make_rng

Point = tuple[float, ...]
#: K-means state: (centroids, last total shift)
KMeansState = tuple[tuple[Point, ...], float]


def _distance2(a: Point, b: Point) -> float:
    return sum((u - v) ** 2 for u, v in zip(a, b))


class KMeans:
    """Lloyd's algorithm expressed through RHEEM operators."""

    def __init__(
        self,
        k: int,
        max_iterations: int = 50,
        tolerance: float = 1e-6,
        seed: int = 17,
    ):
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        self.k = k
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.centroids: tuple[Point, ...] | None = None
        self.metrics: ExecutionMetrics | None = None

    # ------------------------------------------------------------------
    # template pieces
    # ------------------------------------------------------------------
    def _initialize(self, data: list[Point]) -> KMeansState:
        if len(data) < self.k:
            raise ValidationError(
                f"need at least k={self.k} points, got {len(data)}"
            )
        rng = make_rng(self.seed, "kmeans-init")
        return (tuple(rng.sample(data, self.k)), math.inf)

    @staticmethod
    def _contribute(state: KMeansState, point: Point):
        """Assign the point to its nearest centroid; emit partial sums."""
        centroids, _ = state
        best = min(
            range(len(centroids)), key=lambda i: _distance2(centroids[i], point)
        )
        return {best: (point, 1)}

    @staticmethod
    def _combine(a: dict, b: dict) -> dict:
        merged = dict(a)
        for index, (coords, count) in b.items():
            if index in merged:
                prev_coords, prev_count = merged[index]
                merged[index] = (
                    tuple(u + v for u, v in zip(prev_coords, coords)),
                    prev_count + count,
                )
            else:
                merged[index] = (coords, count)
        return merged

    def _update(self, state: KMeansState, combined: dict) -> KMeansState:
        centroids, _ = state
        new_centroids = []
        shift = 0.0
        for index, centroid in enumerate(centroids):
            if index in combined:
                coords, count = combined[index]
                updated = tuple(c / count for c in coords)
            else:
                updated = centroid  # empty cluster keeps its centroid
            shift += math.sqrt(_distance2(centroid, updated))
            new_centroids.append(updated)
        return (tuple(new_centroids), shift)

    def _converged(self, state: KMeansState) -> bool:
        return state[1] < self.tolerance

    # ------------------------------------------------------------------
    def fit(
        self,
        ctx: RheemContext,
        data: Sequence[Point],
        platform: str | None = None,
        columnar: bool | None = None,
    ) -> "KMeans":
        """Cluster ``data``; stores centroids and execution metrics.

        ``columnar=True`` opts eligible hand-offs into the
        struct-of-arrays channel layout (see ``core.channels``).
        """
        data = list(data)
        dim = len(data[0]) if data else 0
        template = IterativeTemplate(
            Initialize(self._initialize, name="KMeans.Initialize"),
            Process(
                self._contribute,
                self._combine,
                self._update,
                name="KMeans.Process",
                udf_load=1.5 * max(1, self.k * dim),
            ),
            Loop(
                condition=self._converged,
                max_iterations=self.max_iterations,
                name="KMeans.Loop",
            ),
        )
        result = template.fit(ctx, data, platform=platform, columnar=columnar)
        self.centroids, _ = result.state
        self.metrics = result.metrics
        return self

    # ------------------------------------------------------------------
    def assign(self, point: Point) -> int:
        """Index of the nearest fitted centroid."""
        if self.centroids is None:
            raise ValidationError("model is not fitted")
        return min(
            range(len(self.centroids)),
            key=lambda i: _distance2(self.centroids[i], point),
        )

    def inertia(self, data: Sequence[Point]) -> float:
        """Sum of squared distances of points to their centroids."""
        if self.centroids is None:
            raise ValidationError("model is not fitted")
        return sum(_distance2(p, self.centroids[self.assign(p)]) for p in data)
