"""The ML application's logical operator template (paper Example 1).

    "The developer can define three basic operators: (i) Initialize, for
    initializing algorithm-specific parameters, e.g., initializing cluster
    centroids, (ii) Process, for the computations required by the ML
    algorithm, e.g., finding the nearest centroid of a point, (iii) Loop,
    for specifying the stopping condition."

``Initialize``, ``Process`` and ``Loop`` are application-layer logical
operators (UDF templates end-users fill in); :class:`IterativeTemplate`
assembles them into a RHEEM plan — the state flows through a ``Repeat``
loop whose body is built from the ``Process`` UDF over the training data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.context import DataQuanta, RheemContext
from repro.core.logical.operators import CostHints, LogicalOperator
from repro.core.metrics import ExecutionMetrics
from repro.errors import ValidationError


class Initialize(LogicalOperator):
    """Produces the initial algorithm state from the training data."""

    def __init__(self, udf: Callable[[list[Any]], Any], name: str | None = None):
        super().__init__(name or "Initialize")
        self.udf = udf

    def apply_op(self, quantum: Any) -> Any:
        return self.udf(quantum)


class Process(LogicalOperator):
    """One iteration's data-parallel computation.

    The UDF receives ``(state, point)`` pairs and emits per-point
    contributions; the template combines contributions with the
    ``combine`` UDF and folds them into the next state with ``update``.
    """

    def __init__(
        self,
        contribute: Callable[[Any, Any], Any],
        combine: Callable[[Any, Any], Any],
        update: Callable[[Any, Any], Any],
        name: str | None = None,
        udf_load: float = 1.0,
    ):
        super().__init__(name or "Process", hints=CostHints(udf_load=udf_load))
        self.contribute = contribute
        self.combine = combine
        self.update = update


class Loop(LogicalOperator):
    """The stopping condition over the current state."""

    def __init__(
        self,
        iterations: int | None = None,
        condition: Callable[[Any], bool] | None = None,
        max_iterations: int = 1000,
        name: str | None = None,
    ):
        super().__init__(name or "Loop")
        if iterations is None and condition is None:
            raise ValidationError("Loop needs iterations and/or a condition")
        self.iterations = iterations
        self.condition = condition
        self.max_iterations = max_iterations


@dataclass
class FitResult:
    """Trained state plus the execution metrics of the training plan."""

    state: Any
    metrics: ExecutionMetrics


class IterativeTemplate:
    """Assembles Initialize/Process/Loop into an executable RHEEM plan.

    The per-iteration dataflow is::

        state --cross--> (state, point) --map--> contribution
              --reduce(combine)--> combined --map(update with state)--> state'

    carrying the state inside each contribution so the final update is a
    pure per-quantum map (no driver-side logic inside the loop).
    """

    def __init__(self, initialize: Initialize, process: Process, loop: Loop):
        self.initialize = initialize
        self.process = process
        self.loop = loop

    def fit(
        self,
        ctx: RheemContext,
        data: Sequence[Any],
        platform: str | None = None,
        columnar: bool | None = None,
    ) -> FitResult:
        """Train over ``data``; returns the final state and metrics.

        ``columnar=True`` opts the training run's numeric hand-offs into
        the struct-of-arrays channel layout (eligible quanta only; mixed
        or nested state falls back to plain channels automatically).
        """
        data = list(data)
        initial_state = self.initialize.apply_op(data)
        process = self.process

        def body(state: DataQuanta) -> DataQuanta:
            points = state.source(data, name="training-data")
            return (
                state.cross(points, hints=CostHints(udf_load=0.5))
                .map(
                    lambda pair: (pair[0], process.contribute(pair[0], pair[1])),
                    name="Process.contribute",
                    hints=process.hints,
                )
                .reduce(
                    lambda a, b: (a[0], process.combine(a[1], b[1])),
                    name="Process.combine",
                    hints=process.hints,
                )
                .map(
                    lambda pair: process.update(pair[0], pair[1]),
                    name="Process.update",
                )
            )

        condition = None
        if self.loop.condition is not None:
            state_condition = self.loop.condition
            condition = lambda states: state_condition(states[0])  # noqa: E731

        handle = ctx.collection([initial_state], name="initial-state").repeat(
            self.loop.iterations,
            body,
            condition=condition,
            max_iterations=self.loop.max_iterations,
        )
        saved_columnar = ctx.executor.columnar
        if columnar is not None:
            ctx.executor.columnar = columnar
        try:
            states, metrics = handle.collect_with_metrics(platform=platform)
        finally:
            ctx.executor.columnar = saved_columnar
        if len(states) != 1:
            raise ValidationError(
                f"iterative template produced {len(states)} states, expected 1"
            )
        return FitResult(states[0], metrics)
