"""Synthetic dataset generators for the ML application.

Substitutes for the LIBSVM datasets used in the paper's Figure 2 (see
DESIGN.md §2): the figure's x-axis is dataset size, which these
generators control directly, and the LIBSVM text codec is provided for
storage-layer round-trips.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.util.rng import make_rng

#: a labelled point: (feature tuple, label)
LabelledPoint = tuple[tuple[float, ...], int]


def linearly_separable(
    n: int,
    dim: int = 4,
    seed: int = 7,
    margin: float = 0.5,
    flip_fraction: float = 0.0,
) -> list[LabelledPoint]:
    """Binary classification data separable by a random hyperplane.

    Points are resampled until they clear ``margin``; ``flip_fraction``
    then flips a fraction of labels to make the task noisy.
    """
    rng = make_rng(seed, "linsep", n, dim)
    normal = [rng.gauss(0.0, 1.0) for _ in range(dim)]
    norm = math.sqrt(sum(c * c for c in normal)) or 1.0
    normal = [c / norm for c in normal]
    points: list[LabelledPoint] = []
    while len(points) < n:
        x = tuple(rng.uniform(-1.0, 1.0) for _ in range(dim))
        score = sum(a * b for a, b in zip(normal, x))
        if abs(score) < margin / 2:
            continue
        label = 1 if score > 0 else -1
        points.append((x, label))
    if flip_fraction > 0:
        flips = int(flip_fraction * n)
        for index in rng.sample(range(n), flips):
            x, y = points[index]
            points[index] = (x, -y)
    return points


def sample_blobs(
    n: int,
    k: int = 3,
    dim: int = 2,
    seed: int = 11,
    spread: float = 0.15,
) -> tuple[list[tuple[float, ...]], list[tuple[float, ...]]]:
    """Gaussian blobs for clustering; returns (points, true centers)."""
    rng = make_rng(seed, "blobs", n, k, dim)
    centers = [
        tuple(rng.uniform(-1.0, 1.0) for _ in range(dim)) for _ in range(k)
    ]
    points = []
    for index in range(n):
        center = centers[index % k]
        points.append(
            tuple(c + rng.gauss(0.0, spread) for c in center)
        )
    return points, centers


def linear_data(
    n: int,
    dim: int = 3,
    noise: float = 0.05,
    seed: int = 13,
) -> tuple[list[tuple[tuple[float, ...], float]], tuple[float, ...]]:
    """Regression data ``y = w·x + noise``; returns (points, true weights)."""
    rng = make_rng(seed, "linear", n, dim)
    weights = tuple(rng.uniform(-1.0, 1.0) for _ in range(dim))
    points = []
    for _ in range(n):
        x = tuple(rng.uniform(-1.0, 1.0) for _ in range(dim))
        y = sum(w * v for w, v in zip(weights, x)) + rng.gauss(0.0, noise)
        points.append((x, y))
    return points, weights


# ----------------------------------------------------------------------
# LIBSVM text codec (the format of the paper's Figure 2 datasets)
# ----------------------------------------------------------------------
def dump_libsvm(points: Sequence[LabelledPoint]) -> list[str]:
    """Encode labelled points as LIBSVM lines (1-based sparse indices)."""
    lines = []
    for x, y in points:
        features = " ".join(
            f"{index + 1}:{value:.17g}" for index, value in enumerate(x) if value != 0.0
        )
        lines.append(f"{y} {features}".rstrip())
    return lines


def parse_libsvm(lines: Iterable[str], dim: int) -> list[LabelledPoint]:
    """Decode LIBSVM lines into dense labelled points of dimension ``dim``."""
    points: list[LabelledPoint] = []
    for line in lines:
        parts = line.split()
        if not parts:
            continue
        label = int(float(parts[0]))
        values = [0.0] * dim
        for item in parts[1:]:
            index_text, value_text = item.split(":", 1)
            values[int(index_text) - 1] = float(value_text)
        points.append((tuple(values), label))
    return points
