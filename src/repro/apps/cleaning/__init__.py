"""BIGDANSING: the data-cleaning application of the paper's case study
(§5, [19]).

Data quality rules are modelled with five logical operators — ``Scope``
(drop irrelevant attributes), ``Block`` (group tuples that can violate
together), ``Iterate`` (enumerate candidate tuple combinations),
``Detect`` (emit violations) and ``GenFix`` (suggest repairs) — which the
application optimizer lowers onto the RHEEM operator pool.  The fine
operator granularity is what enables both distributed execution and
pruning; the single-``Detect``-UDF baseline (Figure 3, left) and the
cross-product baselines (Figure 3, right) are provided for the
experiments.

The ``IEJoin`` inequality-join physical operator ([20]) extends the
physical operator pool exactly as §5.2 describes: ``register_iejoin``
plugs it into the mappings and platforms without touching core code.
"""

from repro.apps.cleaning.datagen import generate_tax_records, tax_schema
from repro.apps.cleaning.iejoin import (
    InequalityJoin,
    PIEJoin,
    ie_join_pairs,
    register_iejoin,
)
from repro.apps.cleaning.pipeline import BigDansing
from repro.apps.cleaning.repair import EquivalenceClassRepair
from repro.apps.cleaning.rules import (
    DCRule,
    FDRule,
    NullRule,
    Predicate,
    Rule,
    UDFRule,
    UniqueRule,
)
from repro.apps.cleaning.violations import Cell, Fix, Violation

__all__ = [
    "BigDansing",
    "Cell",
    "DCRule",
    "EquivalenceClassRepair",
    "FDRule",
    "Fix",
    "NullRule",
    "InequalityJoin",
    "PIEJoin",
    "Predicate",
    "Rule",
    "UDFRule",
    "UniqueRule",
    "Violation",
    "generate_tax_records",
    "ie_join_pairs",
    "register_iejoin",
    "tax_schema",
]
