"""IEJoin: the inequality-join operator from Khayyat et al. [20].

The paper's §5 uses this operator as its extensibility showcase: "we
extended the set of physical RHEEM operators with a new join operator
(called IEJoin) to boost performance".  This module does exactly that:

* :func:`ie_join_pairs` — the algorithm itself: both relations are sorted
  on the first join attribute, the second attribute is reduced to rank
  positions, and a **bit array over rank positions** marks which left
  tuples are "active" while the right relation is swept in first-
  attribute order; eligible partners are read off contiguous bit-array
  slices.  This is the sorted-arrays + permutation + bit-array structure
  of the PVLDB'15 algorithm, with complexity
  ``O(n log n + m log m + scan + output)`` — versus the quadratic
  cross-product baseline.
* :class:`InequalityJoin` — a *new logical operator* an application can
  use in plans;
* :class:`PIEJoin` — the new physical operator (with a nested-loop
  variant as alternate), registered through the standard mapping registry
  and executed on every platform via :func:`register_iejoin` — no core
  changes required.
"""

from __future__ import annotations

import bisect
import operator
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.core.logical.operators import CostHints, LogicalOperator
from repro.core.mappings import OperatorMappings
from repro.core.metrics import CostLedger
from repro.core.optimizer.cost import OperatorCostInput
from repro.core.optimizer.workunits import register_work_units
from repro.core.physical.operators import PhysicalOperator, PNestedLoopJoin
from repro.core.runtime import RuntimeContext
from repro.core.types import KeyUdf
from repro.core.workmeter import report_work
from repro.errors import RuleError
from repro.platforms.base import ExecutionOperator, Platform

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def ie_join_pairs(
    left: Sequence[Any],
    right: Sequence[Any],
    left_key1: KeyUdf,
    op1: str,
    right_key1: KeyUdf,
    left_key2: KeyUdf,
    op2: str,
    right_key2: KeyUdf,
) -> Iterator[tuple[Any, Any]]:
    """All pairs (l, r) with ``k1(l) op1 k1(r)`` and ``k2(l) op2 k2(r)``.

    Yields pairs in right-sweep order.  Both operators must be inequality
    comparators (``<``, ``<=``, ``>``, ``>=``).
    """
    for op in (op1, op2):
        if op not in _COMPARATORS:
            raise RuleError(
                f"IEJoin handles inequality operators only, got {op!r}"
            )
    if not left or not right:
        return

    # Meter the real algorithmic work: two sorts, the bitmap sweep, and
    # one unit per emitted pair (drained by the platform atom interpreter).
    n, m = len(left), len(right)
    report_work(
        0.25 * (n * float(np.log2(max(n, 2))) + m * float(np.log2(max(m, 2))))
        + (n + m) / 16.0
    )

    compare1 = _COMPARATORS[op1]
    descending1 = op1 in (">", ">=")

    # Sort both relations on the first attribute, in the sweep direction:
    # when scanning right tuples in this order, the set of left tuples
    # satisfying predicate 1 only ever grows.
    left_order = sorted(
        range(len(left)), key=lambda i: left_key1(left[i]), reverse=descending1
    )
    right_order = sorted(
        range(len(right)), key=lambda j: right_key1(right[j]), reverse=descending1
    )

    # Rank positions of left tuples on the second attribute (always
    # ascending), plus the sorted key list for offset lookups — the
    # "permutation array" of the PVLDB algorithm.
    y_order = sorted(range(len(left)), key=lambda i: left_key2(left[i]))
    y_keys = [left_key2(left[i]) for i in y_order]
    rank_of_left = {index: rank for rank, index in enumerate(y_order)}
    y_order_array = np.asarray(y_order)

    # The bit array: active[rank] == True once the left tuple at that
    # second-attribute rank satisfies predicate 1 for the current right.
    active = np.zeros(len(left), dtype=bool)

    pointer = 0
    for j in right_order:
        right_tuple = right[j]
        rx = right_key1(right_tuple)
        while pointer < len(left_order) and compare1(
            left_key1(left[left_order[pointer]]), rx
        ):
            active[rank_of_left[left_order[pointer]]] = True
            pointer += 1
        ry = right_key2(right_tuple)
        # Offset into the rank dimension for predicate 2.
        if op2 == ">":
            low, high = bisect.bisect_right(y_keys, ry), len(y_keys)
        elif op2 == ">=":
            low, high = bisect.bisect_left(y_keys, ry), len(y_keys)
        elif op2 == "<":
            low, high = 0, bisect.bisect_left(y_keys, ry)
        else:  # "<="
            low, high = 0, bisect.bisect_right(y_keys, ry)
        if low >= high:
            continue
        hits = np.nonzero(active[low:high])[0]
        report_work(float(len(hits)))
        for rank in hits:
            yield (left[y_order_array[low + rank]], right_tuple)


# ----------------------------------------------------------------------
# operator integration (the §5.2 extensibility path)
# ----------------------------------------------------------------------
class InequalityJoin(LogicalOperator):
    """Logical operator: join two inputs on two inequality conditions."""

    num_inputs = 2

    def __init__(
        self,
        left_key1: KeyUdf,
        op1: str,
        right_key1: KeyUdf,
        left_key2: KeyUdf,
        op2: str,
        right_key2: KeyUdf,
        name: str | None = None,
        hints: CostHints | None = None,
    ):
        super().__init__(name or "InequalityJoin", hints)
        for op in (op1, op2):
            if op not in _COMPARATORS:
                raise RuleError(f"unsupported inequality operator {op!r}")
        self.left_key1 = left_key1
        self.op1 = op1
        self.right_key1 = right_key1
        self.left_key2 = left_key2
        self.op2 = op2
        self.right_key2 = right_key2

    def pair_predicate(self, left: Any, right: Any) -> bool:
        """The equivalent theta-join predicate (for fallback variants)."""
        return _COMPARATORS[self.op1](
            self.left_key1(left), self.right_key1(right)
        ) and _COMPARATORS[self.op2](self.left_key2(left), self.right_key2(right))


class PIEJoin(PhysicalOperator):
    """Physical IEJoin operator (kind ``join.iejoin``)."""

    kind = "join.iejoin"
    num_inputs = 2

    def __init__(self, logical: InequalityJoin):
        super().__init__(logical, "PIEJoin")
        self.join = logical


class _IEJoinExecutionOperator(ExecutionOperator):
    """Shared list-based execution operator (in-process & relational)."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        join: InequalityJoin = self.physical.join
        return list(
            ie_join_pairs(
                list(inputs[0]),
                list(inputs[1]),
                join.left_key1, join.op1, join.right_key1,
                join.left_key2, join.op2, join.right_key2,
            )
        )


class _SparkIEJoinExecutionOperator(ExecutionOperator):
    """Simulated-Spark execution: global sort + partition-pair merging.

    The distributed IEJoin of [20] sorts globally and joins block pairs;
    the simulation gathers (the virtual-time model charges the shuffle)
    and runs the single-node algorithm, then re-partitions the output.
    """

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> Any:
        from repro.platforms.spark.rdd import SimRDD
        from repro.util.iterators import split_evenly

        join: InequalityJoin = self.physical.join
        pairs = list(
            ie_join_pairs(
                inputs[0].collect(),
                inputs[1].collect(),
                join.left_key1, join.op1, join.right_key1,
                join.left_key2, join.op2, join.right_key2,
            )
        )
        parallelism = self.platform.cluster.default_parallelism
        return SimRDD(split_evenly(pairs, parallelism))


def _iejoin_work_units(cost_input: OperatorCostInput) -> float:
    left, right = cost_input.input_cards
    sort_part = 0.25 * (
        left * float(np.log2(max(left, 2.0)))
        + right * float(np.log2(max(right, 2.0)))
    )
    # Bitmap scans are vectorised: ~1/16th of a per-tuple operation each.
    scan_part = (left + right) / 16.0
    return sort_part + scan_part + cost_input.output_card


def _nested_loop_variant(logical: InequalityJoin) -> PNestedLoopJoin:
    return PNestedLoopJoin(logical, logical.pair_predicate)


def register_iejoin(
    mappings: OperatorMappings, platforms: Sequence[Platform]
) -> None:
    """Plug IEJoin into a mapping registry and a set of platforms.

    This is the extensibility path of §5.2: a new physical operator with
    a nested-loop alternate, execution operators per platform, and a work
    unit estimate — all registered declaratively.  Idempotent.
    """
    if not mappings.has_mapping(InequalityJoin):
        mappings.register(InequalityJoin, PIEJoin, prepend=True)
        mappings.register(InequalityJoin, _nested_loop_variant)
    register_work_units("join.iejoin", _iejoin_work_units)
    for platform in platforms:
        if platform.name == "spark":
            platform.register_execution_operator(
                "join.iejoin", _SparkIEJoinExecutionOperator
            )
        else:
            platform.register_execution_operator(
                "join.iejoin", _IEJoinExecutionOperator
            )
