"""Dirty-data generator for the cleaning experiments.

Substitutes for the TAX-style datasets of the BigDansing evaluation (see
DESIGN.md §2): employee records where

* ``zipcode -> city`` functionally determines the city (FD rule target),
  violated by mistyped cities in a controlled fraction of rows, and
* within a state, a higher salary implies a higher tax (DC rule target:
  ``not(t1.salary > t2.salary and t1.tax < t2.tax and
  t1.state == t2.state)``), violated by under-reported taxes.

Violation selectivity, block sizes and row counts — the quantities the
detection cost depends on — are explicit knobs.
"""

from __future__ import annotations

from repro.core.types import Record, Schema
from repro.util.rng import make_rng

_STATES = [f"S{i:02d}" for i in range(50)]


def tax_schema() -> Schema:
    """Schema of the synthetic employee/tax dataset."""
    return Schema(["name", "zipcode", "city", "state", "salary", "tax"])


def generate_tax_records(
    n: int,
    seed: int = 42,
    fd_error_rate: float = 0.02,
    dc_error_rate: float = 0.02,
    zip_block_size: int = 20,
    states: int = 20,
) -> list[Record]:
    """Generate ``n`` employee records with seeded FD and DC errors.

    ``zip_block_size`` controls the expected tuples per zipcode (the FD
    blocking-key fan-in); ``states`` bounds the DC blocking keys.
    """
    if states > len(_STATES):
        raise ValueError(f"at most {len(_STATES)} states supported")
    schema = tax_schema()
    rng = make_rng(seed, "tax", n)
    zip_count = max(1, n // zip_block_size)
    city_of_zip = {
        z: f"City{z % max(1, zip_count // 2):04d}" for z in range(zip_count)
    }
    rows: list[Record] = []
    for i in range(n):
        zipcode = rng.randrange(zip_count)
        state = _STATES[rng.randrange(states)]
        salary = float(rng.randrange(20_000, 200_000))
        rate = 0.10 + 0.002 * (sum(ord(c) for c in state) % 10)
        tax = round(salary * rate, 2)
        rows.append(
            schema.record(
                f"emp{i:07d}",
                f"Z{zipcode:05d}",
                city_of_zip[zipcode],
                state,
                salary,
                tax,
            )
        )

    # FD errors: mistype the city of a fraction of rows.
    fd_errors = int(fd_error_rate * n)
    for index in rng.sample(range(n), fd_errors) if fd_errors else []:
        rows[index] = rows[index].with_value(
            "city", rows[index]["city"] + "_typo"
        )

    # DC errors: under-report the tax of a fraction of (high-salary) rows.
    dc_errors = int(dc_error_rate * n)
    for index in rng.sample(range(n), dc_errors) if dc_errors else []:
        rows[index] = rows[index].with_value(
            "tax", round(rows[index]["salary"] * 0.01, 2)
        )
    return rows
