"""The BigDansing detection pipeline and its baselines.

Four detection methods over the same rule, matching the paper's Figure 3:

* ``operators`` — the BigDansing plan: ``ZipWithId → Scope → Block →
  Iterate+Detect``, the five-operator decomposition that enables both
  blocking-based pruning and fine-grained distributed execution;
* ``iejoin`` — the same plan with the ``IEJoin`` physical operator doing
  the inequality pair enumeration inside blocks (or a plan-level
  ``InequalityJoin`` when the rule has no equality predicates);
* ``single-udf`` — Figure 3 (left) baseline: the whole detection logic in
  one opaque UDF (a single block, no pruning, no parallel granularity);
* ``cross`` — Figure 3 (right) baseline: cross product plus a filtering
  detect, i.e. the theta-join a generic SQL-on-Spark engine would run.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.apps.cleaning.iejoin import InequalityJoin, ie_join_pairs, register_iejoin
from repro.apps.cleaning.repair import EquivalenceClassRepair
from repro.apps.cleaning.rules import DCRule, Rule, TupleWithId
from repro.apps.cleaning.violations import Fix, Violation
from repro.core.context import DataQuanta, RheemContext
from repro.core.logical.operators import CostHints
from repro.core.metrics import ExecutionMetrics
from repro.core.types import Record
from repro.core.workmeter import report_work
from repro.errors import RuleError

DetectionMethod = str

_METHODS = ("auto", "operators", "iejoin", "single-udf", "cross")


class BigDansing:
    """Rule-based violation detection and repair on RHEEM."""

    def __init__(self, ctx: RheemContext | None = None):
        self.ctx = ctx or RheemContext()
        register_iejoin(self.ctx.mappings, self.ctx.platforms)
        self.repairer = EquivalenceClassRepair()

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def detect(
        self,
        rows: Sequence[Record],
        rule: Rule,
        platform: str | None = None,
        method: DetectionMethod = "auto",
    ) -> tuple[list[Violation], ExecutionMetrics]:
        """Find all violations of ``rule`` in ``rows``.

        Returns the violations and the execution metrics of the detection
        plan.  ``method`` selects the plan shape (see module docstring);
        ``auto`` uses IEJoin when the rule is an inequality DC and the
        operator pipeline otherwise.
        """
        if method not in _METHODS:
            raise RuleError(f"unknown method {method!r}; options: {_METHODS}")
        if method == "auto":
            is_ie = isinstance(rule, DCRule) and rule.inequality_pair is not None
            method = "iejoin" if is_ie else "operators"

        ids = self.ctx.collection(rows, name="dirty-rows").zip_with_id()
        if rule.single_tuple:
            handle = self._single_tuple_plan(ids, rule)
        elif method == "operators":
            handle = self._operator_plan(ids, rule)
        elif method == "iejoin":
            handle = self._iejoin_plan(ids, rule)
        elif method == "single-udf":
            handle = self._single_udf_plan(ids, rule)
        else:
            handle = self._cross_plan(ids, rule)
        violations, metrics = handle.collect_with_metrics(platform=platform)
        return violations, metrics

    def _single_tuple_plan(self, ids: DataQuanta, rule: Rule) -> DataQuanta:
        """Single-tuple rules need no Block/Iterate: Scope then Detect."""
        return self._scoped(ids, rule).flat_map(
            lambda item: rule.detect_single(item),
            name="DetectSingle",
            hints=CostHints(udf_load=2.0, output_factor=0.1),
        )

    # -- the BigDansing operator pipeline --------------------------------
    def _scoped(self, ids: DataQuanta, rule: Rule) -> DataQuanta:
        def scope_or_drop(item: TupleWithId):
            scoped = rule.scope(item)
            return [scoped] if scoped is not None else []

        return ids.flat_map(
            scope_or_drop, name="Scope", hints=CostHints(output_factor=1.0)
        )

    def _operator_plan(self, ids: DataQuanta, rule: Rule) -> DataQuanta:
        def iterate_detect(block_pair) -> list[Violation]:
            _, members = block_pair
            violations: list[Violation] = []
            candidates = 0
            for candidate in rule.iterate(members):
                candidates += 1
                violations.extend(rule.detect(candidate))
            report_work(2.0 * candidates + len(members))
            return violations

        return (
            self._scoped(ids, rule)
            .group_by(
                rule.block,
                name="Block",
                hints=CostHints(key_fanout=rule.block_fanout),
            )
            .flat_map(
                iterate_detect,
                name="Iterate+Detect",
                hints=CostHints(udf_load=4.0, output_factor=0.5),
            )
        )

    def _iejoin_plan(self, ids: DataQuanta, rule: Rule) -> DataQuanta:
        if not isinstance(rule, DCRule) or rule.inequality_pair is None:
            raise RuleError(
                f"{rule.describe()} is not an inequality DC; IEJoin does "
                "not apply"
            )
        pred1, pred2 = rule.inequality_pair

        if not rule.equalities:
            # No blocking key: use the plan-level InequalityJoin operator,
            # the paper's extensibility showcase.
            scoped = self._scoped(ids, rule)
            join = InequalityJoin(
                lambda item: item[1][pred1.left_field], pred1.op,
                lambda item: item[1][pred1.right_field],
                lambda item: item[1][pred2.left_field], pred2.op,
                lambda item: item[1][pred2.right_field],
                hints=CostHints(key_fanout=0.0005),
            )
            return scoped.apply_binary_operator(join, scoped).flat_map(
                lambda pair: rule.detect(pair), name="Detect",
                hints=CostHints(udf_load=2.0, output_factor=1.0),
            )

        def iejoin_detect(block_pair) -> list[Violation]:
            _, members = block_pair
            violations: list[Violation] = []
            pairs = ie_join_pairs(
                members, members,
                lambda item: item[1][pred1.left_field], pred1.op,
                lambda item: item[1][pred1.right_field],
                lambda item: item[1][pred2.left_field], pred2.op,
                lambda item: item[1][pred2.right_field],
            )
            for left, right in pairs:
                if left[0] != right[0]:
                    violations.extend(rule.detect((left, right)))
            report_work(2.0 * len(violations))
            return violations

        return (
            self._scoped(ids, rule)
            .group_by(
                rule.block,
                name="Block",
                hints=CostHints(key_fanout=rule.block_fanout),
            )
            .flat_map(
                iejoin_detect,
                name="IEJoin+Detect",
                hints=CostHints(udf_load=2.0, output_factor=0.5),
            )
        )

    # -- baselines --------------------------------------------------------
    def _single_udf_plan(self, ids: DataQuanta, rule: Rule) -> DataQuanta:
        """Figure 3 (left) baseline: everything inside one Detect UDF.

        One global block means no pruning and a single execution unit —
        on a distributed platform the whole quadratic detection runs in
        one task.
        """

        def detect_everything(block_pair) -> list[Violation]:
            _, members = block_pair
            scoped = [
                scoped_item
                for item in members
                if (scoped_item := rule.scope(item)) is not None
            ]
            violations: list[Violation] = []
            candidates = 0
            for candidate in rule.iterate(scoped):
                candidates += 1
                violations.extend(rule.full_detect(candidate))
            report_work(2.0 * candidates + len(members))
            return violations

        return ids.group_by(
            lambda item: 0, name="SingleBlock", hints=CostHints(key_fanout=0.0001)
        ).flat_map(
            detect_everything,
            name="SingleDetectUDF",
            hints=CostHints(udf_load=2000.0, output_factor=10.0),
        )

    def _cross_plan(self, ids: DataQuanta, rule: Rule) -> DataQuanta:
        """Figure 3 (right) baseline: theta-join by cross product."""
        scoped = self._scoped(ids, rule)

        def detect_pair(pair) -> list[Violation]:
            left, right = pair
            report_work(2.0)
            if left[0] == right[0]:
                return []
            return rule.full_detect((left, right))

        return scoped.cross(scoped).flat_map(
            detect_pair, name="CrossDetect",
            hints=CostHints(udf_load=2.0, output_factor=0.001),
        )

    # ------------------------------------------------------------------
    # repair
    # ------------------------------------------------------------------
    def gen_fixes(self, violations: Sequence[Violation], rule: Rule) -> list[Fix]:
        """Run the rule's GenFix operator over detected violations."""
        fixes: list[Fix] = []
        for violation in violations:
            fixes.extend(rule.gen_fix(violation))
        return fixes

    def clean(
        self,
        rows: Sequence[Record],
        rules: Sequence[Rule],
        platform: str | None = None,
        max_passes: int = 5,
    ) -> tuple[list[Record], dict[str, Any]]:
        """Detect-and-repair to a fixpoint (bounded by ``max_passes``).

        Returns the repaired rows and a report with per-pass violation
        counts and the total cells changed.
        """
        current = list(rows)
        report: dict[str, Any] = {"passes": [], "cells_changed": 0}
        for _ in range(max_passes):
            all_violations: list[Violation] = []
            all_fixes: list[Fix] = []
            for rule in rules:
                violations, _metrics = self.detect(current, rule, platform=platform)
                all_violations.extend(violations)
                all_fixes.extend(self.gen_fixes(violations, rule))
            report["passes"].append(len(all_violations))
            if not all_violations:
                break
            current, changed = self.repairer.repair(current, all_fixes)
            report["cells_changed"] += changed
            if changed == 0:
                break
        return current, report
