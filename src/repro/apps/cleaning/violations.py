"""Violation and repair data model.

A *cell* is one attribute value of one tuple; a *violation* is a set of
cells that jointly break a rule; a *fix* is a suggested change — either
assigning a constant or equating two cells (letting the repair algorithm
choose the value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Cell:
    """One attribute of one tuple: (tuple id, field, current value)."""

    tid: int
    field: str
    value: Any

    def __str__(self) -> str:
        return f"t{self.tid}.{self.field}={self.value!r}"


@dataclass(frozen=True)
class Violation:
    """A rule violation over a set of cells.

    Cells are canonicalised to sorted order so the same violation found
    by different detection plans (ordered vs. unordered pair iteration)
    compares equal.
    """

    rule_id: str
    cells: tuple[Cell, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(sorted(self.cells)))

    def tuple_ids(self) -> tuple[int, ...]:
        """The distinct tuple ids involved, sorted."""
        return tuple(sorted({cell.tid for cell in self.cells}))

    def __str__(self) -> str:
        cells = ", ".join(str(cell) for cell in self.cells)
        return f"Violation[{self.rule_id}]({cells})"


@dataclass(frozen=True)
class Fix:
    """A candidate repair.

    Either *equate* two cells (``right_cell`` set, value ignored) or
    *assign* a constant to one cell (``right_cell`` None).
    """

    left_cell: Cell
    right_cell: Cell | None = None
    value: Any = None

    @property
    def is_assignment(self) -> bool:
        return self.right_cell is None

    def __str__(self) -> str:
        if self.is_assignment:
            return f"Fix({self.left_cell} := {self.value!r})"
        return f"Fix({self.left_cell} == {self.right_cell})"
