"""Equivalence-class repair.

Implements the classic repair strategy BigDansing builds on: equate-fixes
union cells into equivalence classes (union-find); each class is then
assigned one value — a forced assignment when present, otherwise the most
frequent current value (ties broken deterministically by smallest repr).
Applying the assignments yields a repaired instance; iterating
detect→repair reaches a fixpoint for FD-style rules.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence

from repro.apps.cleaning.violations import Fix
from repro.core.types import Record

#: a cell coordinate: (tuple id, field)
CellKey = tuple[int, str]


class _UnionFind:
    """Path-compressed union-find over cell coordinates."""

    def __init__(self):
        self._parent: dict[CellKey, CellKey] = {}

    def find(self, key: CellKey) -> CellKey:
        self._parent.setdefault(key, key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:  # path compression
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: CellKey, b: CellKey) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def groups(self) -> dict[CellKey, list[CellKey]]:
        result: dict[CellKey, list[CellKey]] = {}
        for key in list(self._parent):
            result.setdefault(self.find(key), []).append(key)
        return result


class EquivalenceClassRepair:
    """Chooses one value per equivalence class of cells."""

    def repair(
        self, rows: Sequence[Record], fixes: Sequence[Fix]
    ) -> tuple[list[Record], int]:
        """Apply ``fixes`` to ``rows``; returns (repaired rows, #cells changed).

        Tuple ids are positions in ``rows`` (the ``ZipWithId`` order used
        by the detection pipeline).
        """
        union = _UnionFind()
        forced: dict[CellKey, Any] = {}
        for fix in fixes:
            left = (fix.left_cell.tid, fix.left_cell.field)
            if fix.is_assignment:
                forced[union.find(left)] = fix.value
            else:
                right = (fix.right_cell.tid, fix.right_cell.field)
                union.union(left, right)

        repaired = list(rows)
        changed = 0
        for root, members in union.groups().items():
            target = self._target_value(root, members, forced, rows)
            for tid, field in members:
                if repaired[tid][field] != target:
                    repaired[tid] = repaired[tid].with_value(field, target)
                    changed += 1
        # Assignment-only fixes whose cell never joined a class.
        for root, value in forced.items():
            tid, field = root
            if union.find(root) == root and repaired[tid][field] != value:
                repaired[tid] = repaired[tid].with_value(field, value)
                changed += 1
        return repaired, changed

    @staticmethod
    def _target_value(
        root: CellKey,
        members: list[CellKey],
        forced: dict[CellKey, Any],
        rows: Sequence[Record],
    ) -> Any:
        if root in forced:
            return forced[root]
        values = Counter(rows[tid][field] for tid, field in members)
        best_count = max(values.values())
        candidates = [v for v, c in values.items() if c == best_count]
        return min(candidates, key=repr)
