"""The BigDansing rule API: Scope / Block / Iterate / Detect / GenFix.

"BIGDANSING models data quality rules with five operators, namely Scope,
Block, Iterate, Detect, and GenFix.  These operators allow users to
capture the semantics of error detection and possible repairs generation
at the application layer" (paper §5.1).

A :class:`Rule` supplies the five UDFs; :class:`FDRule` and
:class:`DCRule` generate them from declarative specifications (functional
dependencies and denial constraints), and :class:`UDFRule` accepts raw
callables for everything else.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.apps.cleaning.violations import Cell, Fix, Violation
from repro.core.types import Record
from repro.errors import RuleError

#: a tuple with its id: the unit flowing through the detection pipeline
TupleWithId = tuple[int, Record]

_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class Predicate:
    """One comparison of a denial constraint: ``t1.left op t2.right``."""

    left_field: str
    op: str
    right_field: str

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise RuleError(
                f"unknown operator {self.op!r}; supported: {sorted(_OPERATORS)}"
            )

    def holds(self, t1: Record, t2: Record) -> bool:
        return _OPERATORS[self.op](t1[self.left_field], t2[self.right_field])

    @property
    def is_equality(self) -> bool:
        return self.op == "=="

    @property
    def is_inequality(self) -> bool:
        return self.op in ("<", "<=", ">", ">=")

    def __str__(self) -> str:
        return f"t1.{self.left_field} {self.op} t2.{self.right_field}"


class Rule:
    """Base class: the five logical operators of a data quality rule."""

    rule_id: str = "rule"
    #: single-tuple rules are detected per tuple (no Block/Iterate pass)
    single_tuple: bool = False

    # -- Scope ---------------------------------------------------------
    def scope(self, item: TupleWithId) -> TupleWithId | None:
        """Project away attributes irrelevant to the rule.

        Returning None drops the tuple entirely (it cannot participate in
        any violation).  Default: keep everything.
        """
        return item

    # -- Block ---------------------------------------------------------
    def block(self, item: TupleWithId) -> Any:
        """The blocking key: only tuples sharing a key can co-violate.

        Default: a single global block (no pruning).
        """
        return 0

    # -- Iterate -------------------------------------------------------
    def iterate(
        self, block: Sequence[TupleWithId]
    ) -> Iterator[tuple[TupleWithId, TupleWithId]]:
        """Enumerate candidate tuple combinations within a block.

        Default: all ordered pairs of distinct tuples.
        """
        for i, first in enumerate(block):
            for j, second in enumerate(block):
                if i != j:
                    yield (first, second)

    # -- Detect --------------------------------------------------------
    def detect(
        self, candidate: tuple[TupleWithId, TupleWithId]
    ) -> list[Violation]:
        """Emit the violations a candidate pair exhibits."""
        raise NotImplementedError

    def detect_single(self, item: TupleWithId) -> list[Violation]:
        """Emit the violations of one tuple (single-tuple rules only)."""
        raise NotImplementedError

    def full_detect(
        self, candidate: tuple[TupleWithId, TupleWithId]
    ) -> list[Violation]:
        """Detect with the *complete* rule condition on an arbitrary pair.

        ``detect`` may assume its candidates share a blocking key (they
        came from ``Iterate`` over a ``Block``); monolithic baselines that
        skip blocking must re-check that condition here.
        """
        if self.block(candidate[0]) != self.block(candidate[1]):
            return []
        return self.detect(candidate)

    # -- GenFix --------------------------------------------------------
    def gen_fix(self, violation: Violation) -> list[Fix]:
        """Suggest candidate repairs for a violation.  Default: none."""
        return []

    # -- optimizer context ----------------------------------------------
    @property
    def block_fanout(self) -> float:
        """Estimated distinct-block fraction (hint for the optimizer)."""
        return 0.05

    def describe(self) -> str:
        return f"{type(self).__name__}({self.rule_id})"


class FDRule(Rule):
    """Functional dependency ``lhs -> rhs``.

    Two tuples agreeing on every ``lhs`` attribute must agree on every
    ``rhs`` attribute; disagreement yields one violation per ``rhs``
    attribute, with equate-fixes on the right-hand cells.
    """

    def __init__(self, rule_id: str, lhs: Sequence[str], rhs: Sequence[str]):
        if not lhs or not rhs:
            raise RuleError("an FD needs non-empty lhs and rhs")
        if set(lhs) & set(rhs):
            raise RuleError(f"lhs and rhs overlap: {set(lhs) & set(rhs)}")
        self.rule_id = rule_id
        self.lhs = tuple(lhs)
        self.rhs = tuple(rhs)

    def scope(self, item: TupleWithId) -> TupleWithId:
        tid, record = item
        return (tid, record.project(list(self.lhs + self.rhs)))

    def block(self, item: TupleWithId) -> Any:
        _, record = item
        return tuple(record[field] for field in self.lhs)

    def iterate(self, block: Sequence[TupleWithId]):
        """Unordered pairs suffice: FD violations are symmetric."""
        for i in range(len(block)):
            for j in range(i + 1, len(block)):
                yield (block[i], block[j])

    def detect(self, candidate) -> list[Violation]:
        (tid1, t1), (tid2, t2) = candidate
        violations = []
        for field in self.rhs:
            if t1[field] != t2[field]:
                violations.append(
                    Violation(
                        self.rule_id,
                        (
                            Cell(tid1, field, t1[field]),
                            Cell(tid2, field, t2[field]),
                        ),
                    )
                )
        return violations

    def gen_fix(self, violation: Violation) -> list[Fix]:
        first, second = violation.cells
        return [Fix(first, second)]

    def describe(self) -> str:
        return f"FD[{self.rule_id}]: {','.join(self.lhs)} -> {','.join(self.rhs)}"


class DCRule(Rule):
    """Denial constraint: no tuple pair may satisfy all predicates.

    Equality predicates over the same field become the blocking key;
    inequality predicates are evaluated inside blocks — and when exactly
    two inequality predicates remain, the detection pipeline can use the
    ``IEJoin`` physical operator (paper §5, [20]).
    """

    def __init__(self, rule_id: str, predicates: Sequence[Predicate]):
        if not predicates:
            raise RuleError("a DC needs at least one predicate")
        self.rule_id = rule_id
        self.predicates = tuple(predicates)
        self.equalities = tuple(
            p for p in self.predicates
            if p.is_equality and p.left_field == p.right_field
        )
        self.residual = tuple(
            p for p in self.predicates if p not in self.equalities
        )

    @property
    def inequality_pair(self) -> tuple[Predicate, Predicate] | None:
        """The two inequality predicates when IEJoin applies, else None."""
        if len(self.residual) == 2 and all(p.is_inequality for p in self.residual):
            return (self.residual[0], self.residual[1])
        return None

    def scope(self, item: TupleWithId) -> TupleWithId:
        tid, record = item
        fields: list[str] = []
        for predicate in self.predicates:
            for field in (predicate.left_field, predicate.right_field):
                if field not in fields:
                    fields.append(field)
        return (tid, record.project(fields))

    def block(self, item: TupleWithId) -> Any:
        _, record = item
        return tuple(record[p.left_field] for p in self.equalities)

    def detect(self, candidate) -> list[Violation]:
        (tid1, t1), (tid2, t2) = candidate
        if all(p.holds(t1, t2) for p in self.residual):
            cells = []
            seen = set()
            for predicate in self.residual:
                for tid, record, field in (
                    (tid1, t1, predicate.left_field),
                    (tid2, t2, predicate.right_field),
                ):
                    if (tid, field) not in seen:
                        seen.add((tid, field))
                        cells.append(Cell(tid, field, record[field]))
            return [Violation(self.rule_id, tuple(cells))]
        return []

    def gen_fix(self, violation: Violation) -> list[Fix]:
        """Breaking any one predicate repairs the pair; suggest equating
        the first inequality's cells (a common minimal heuristic)."""
        if len(violation.cells) >= 2:
            return [Fix(violation.cells[0], violation.cells[1])]
        return []

    @property
    def block_fanout(self) -> float:
        return 0.02 if self.equalities else 1.0

    def describe(self) -> str:
        preds = " and ".join(str(p) for p in self.predicates)
        return f"DC[{self.rule_id}]: not({preds})"


class UniqueRule(Rule):
    """Key constraint: no two tuples may agree on every key field.

    Violations carry the key cells of both tuples; no automatic fix is
    suggested (which duplicate to change is an application decision).
    """

    def __init__(self, rule_id: str, fields: Sequence[str]):
        if not fields:
            raise RuleError("a uniqueness rule needs at least one field")
        self.rule_id = rule_id
        self.fields = tuple(fields)

    def scope(self, item: TupleWithId) -> TupleWithId:
        tid, record = item
        return (tid, record.project(list(self.fields)))

    def block(self, item: TupleWithId) -> Any:
        _, record = item
        return tuple(record[field] for field in self.fields)

    def iterate(self, block: Sequence[TupleWithId]):
        for i in range(len(block)):
            for j in range(i + 1, len(block)):
                yield (block[i], block[j])

    def detect(self, candidate) -> list[Violation]:
        (tid1, t1), (tid2, t2) = candidate
        if all(t1[f] == t2[f] for f in self.fields):
            cells = tuple(
                Cell(tid, f, record[f])
                for tid, record in ((tid1, t1), (tid2, t2))
                for f in self.fields
            )
            return [Violation(self.rule_id, cells)]
        return []

    @property
    def block_fanout(self) -> float:
        # keys are near-unique by definition; blocks are tiny
        return 0.9

    def describe(self) -> str:
        return f"UNIQUE[{self.rule_id}]: ({', '.join(self.fields)})"


class NullRule(Rule):
    """Single-tuple completeness rule: listed fields must not be null.

    ``null_values`` defines what counts as missing; an optional
    ``default`` per field turns GenFix into an assignment.
    """

    single_tuple = True

    def __init__(
        self,
        rule_id: str,
        fields: Sequence[str],
        null_values: Sequence[Any] = (None, ""),
        defaults: dict[str, Any] | None = None,
    ):
        if not fields:
            raise RuleError("a null rule needs at least one field")
        self.rule_id = rule_id
        self.fields = tuple(fields)
        self.null_values = tuple(null_values)
        self.defaults = dict(defaults or {})

    def scope(self, item: TupleWithId) -> TupleWithId:
        tid, record = item
        return (tid, record.project(list(self.fields)))

    def detect_single(self, item: TupleWithId) -> list[Violation]:
        tid, record = item
        violations = []
        for field in self.fields:
            if record[field] in self.null_values:
                violations.append(
                    Violation(self.rule_id, (Cell(tid, field, record[field]),))
                )
        return violations

    def detect(self, candidate) -> list[Violation]:
        raise RuleError("NullRule is a single-tuple rule; use detect_single")

    def gen_fix(self, violation: Violation) -> list[Fix]:
        (cell,) = violation.cells
        if cell.field in self.defaults:
            return [Fix(cell, value=self.defaults[cell.field])]
        return []

    def describe(self) -> str:
        return f"NOTNULL[{self.rule_id}]: ({', '.join(self.fields)})"


class UDFRule(Rule):
    """A rule assembled from raw callables (the fully general case)."""

    def __init__(
        self,
        rule_id: str,
        detect: Callable[[tuple[TupleWithId, TupleWithId]], list[Violation]],
        scope: Callable[[TupleWithId], TupleWithId | None] | None = None,
        block: Callable[[TupleWithId], Any] | None = None,
        iterate: Callable[[Sequence[TupleWithId]], Iterable] | None = None,
        gen_fix: Callable[[Violation], list[Fix]] | None = None,
    ):
        self.rule_id = rule_id
        self._detect = detect
        self._scope = scope
        self._block = block
        self._iterate = iterate
        self._gen_fix = gen_fix

    def scope(self, item: TupleWithId):
        return self._scope(item) if self._scope else item

    def block(self, item: TupleWithId):
        return self._block(item) if self._block else 0

    def iterate(self, block: Sequence[TupleWithId]):
        if self._iterate:
            return iter(self._iterate(block))
        return super().iterate(block)

    def detect(self, candidate) -> list[Violation]:
        return self._detect(candidate)

    def gen_fix(self, violation: Violation) -> list[Fix]:
        return self._gen_fix(violation) if self._gen_fix else []
