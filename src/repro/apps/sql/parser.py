"""Recursive-descent SQL parser.

Grammar (EBNF-ish)::

    query      := SELECT [DISTINCT] select_list FROM table_ref join*
                  [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                  [ORDER BY order_list] [LIMIT number]
    select_list:= '*' | select_item (',' select_item)*
    select_item:= expr [AS ident]
    table_ref  := ident [ident]              -- optional alias
    join       := [INNER] JOIN table_ref ON column '=' column
    expr       := or-expression with standard precedence
                  (OR < AND < NOT < comparison < additive < multiplicative
                   < unary minus < primary)
    primary    := literal | column | aggregate '(' (expr | '*') ')'
                  | '(' expr ')'
"""

from __future__ import annotations

from repro.apps.sql.ast import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    Column,
    Expression,
    FunctionCall,
    JoinClause,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    UnaryOp,
)
from repro.apps.sql.lexer import Token, tokenize
from repro.errors import RheemError


class SqlParseError(RheemError):
    """The token stream did not match the grammar."""


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token plumbing --------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def check(self, kind: str, value: str | None = None) -> bool:
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        if not self.check(kind, value):
            want = value or kind
            raise SqlParseError(
                f"expected {want} at position {self.current.position}, "
                f"found {self.current.value!r}"
            )
        return self.advance()

    # -- statement -------------------------------------------------------
    def parse_query(self) -> Query:
        self.expect("KEYWORD", "SELECT")
        distinct = self.accept("KEYWORD", "DISTINCT") is not None
        select = self.parse_select_list()
        self.expect("KEYWORD", "FROM")
        table, alias = self.parse_table_ref()
        joins = []
        while self.check("KEYWORD", "JOIN") or self.check("KEYWORD", "INNER"):
            joins.append(self.parse_join())
        where = None
        if self.accept("KEYWORD", "WHERE"):
            where = self.parse_expression()
        group_by: tuple[Expression, ...] = ()
        if self.accept("KEYWORD", "GROUP"):
            self.expect("KEYWORD", "BY")
            group_by = tuple(self.parse_expression_list())
        having = None
        if self.accept("KEYWORD", "HAVING"):
            having = self.parse_expression()
        order_by: tuple[OrderItem, ...] = ()
        if self.accept("KEYWORD", "ORDER"):
            self.expect("KEYWORD", "BY")
            order_by = tuple(self.parse_order_list())
        limit = None
        if self.accept("KEYWORD", "LIMIT"):
            token = self.expect("NUMBER")
            if "." in token.value:
                raise SqlParseError(f"LIMIT must be an integer, got {token.value}")
            limit = int(token.value)
        self.expect("EOF")
        return Query(
            select=tuple(select),
            table=table,
            alias=alias,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def parse_select_list(self) -> list[SelectItem]:
        if self.check("OP", "*"):
            self.advance()
            return [SelectItem(Literal(None), star=True)]
        items = [self.parse_select_item()]
        while self.accept("PUNCT", ","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self) -> SelectItem:
        expression = self.parse_expression()
        alias = None
        if self.accept("KEYWORD", "AS"):
            alias = self.expect("IDENT").value
        elif self.check("IDENT"):
            alias = self.advance().value
        return SelectItem(expression, alias)

    def parse_table_ref(self) -> tuple[str, str]:
        table = self.expect("IDENT").value
        alias = table
        if self.check("IDENT"):
            alias = self.advance().value
        return table, alias

    def parse_join(self) -> JoinClause:
        self.accept("KEYWORD", "INNER")
        self.expect("KEYWORD", "JOIN")
        table, alias = self.parse_table_ref()
        self.expect("KEYWORD", "ON")
        left = self.parse_primary()
        self.expect("OP", "=")
        right = self.parse_primary()
        if not isinstance(left, Column) or not isinstance(right, Column):
            raise SqlParseError("JOIN ... ON requires column = column")
        return JoinClause(table, alias, left, right)

    def parse_expression_list(self) -> list[Expression]:
        items = [self.parse_expression()]
        while self.accept("PUNCT", ","):
            items.append(self.parse_expression())
        return items

    def parse_order_list(self) -> list[OrderItem]:
        items = [self.parse_order_item()]
        while self.accept("PUNCT", ","):
            items.append(self.parse_order_item())
        return items

    def parse_order_item(self) -> OrderItem:
        expression = self.parse_expression()
        descending = False
        if self.accept("KEYWORD", "DESC"):
            descending = True
        else:
            self.accept("KEYWORD", "ASC")
        return OrderItem(expression, descending)

    # -- expressions (precedence climbing) --------------------------------
    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.accept("KEYWORD", "OR"):
            left = BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expression:
        left = self.parse_not()
        while self.accept("KEYWORD", "AND"):
            left = BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> Expression:
        if self.accept("KEYWORD", "NOT"):
            return UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expression:
        left = self.parse_additive()
        if self.current.kind == "OP" and self.current.value in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            op = self.advance().value
            return BinaryOp(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while self.current.kind == "OP" and self.current.value in ("+", "-"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while self.current.kind == "OP" and self.current.value in ("*", "/", "%"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expression:
        if self.check("OP", "-"):
            self.advance()
            return UnaryOp("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "STRING":
            self.advance()
            return Literal(token.value)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self.advance()
            return Literal(token.value == "TRUE")
        if token.kind == "KEYWORD" and token.value == "NULL":
            self.advance()
            return Literal(None)
        if self.accept("PUNCT", "("):
            inner = self.parse_expression()
            self.expect("PUNCT", ")")
            return inner
        if token.kind == "IDENT":
            self.advance()
            # aggregate call?
            if token.value.upper() in AGGREGATE_FUNCTIONS and self.check("PUNCT", "("):
                self.advance()
                if self.accept("OP", "*"):
                    self.expect("PUNCT", ")")
                    if token.value.upper() != "COUNT":
                        raise SqlParseError(
                            f"{token.value.upper()}(*) is not valid SQL"
                        )
                    return FunctionCall("COUNT", None)
                argument = self.parse_expression()
                self.expect("PUNCT", ")")
                return FunctionCall(token.value.upper(), argument)
            # qualified column?
            if self.accept("PUNCT", "."):
                field = self.expect("IDENT").value
                return Column(field, table=token.value)
            return Column(token.value)
        raise SqlParseError(
            f"unexpected token {token.value!r} at position {token.position}"
        )


def parse(text: str) -> Query:
    """Parse one SELECT statement into a :class:`Query` AST."""
    return _Parser(tokenize(text)).parse_query()
