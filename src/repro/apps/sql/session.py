"""The SQL session: table registry + query execution facade."""

from __future__ import annotations

from typing import Sequence

from repro.apps.sql.parser import parse
from repro.apps.sql.translator import SqlTranslationError, translate
from repro.core.context import DataQuanta, RheemContext
from repro.core.metrics import ExecutionMetrics
from repro.core.types import Record, Schema


class SqlSession:
    """Executes SQL over in-memory tables and catalog datasets.

    Tables resolve in two ways:

    * explicitly registered collections (:meth:`register_table`);
    * datasets in the context's storage catalog (automatic) — including
      tables living natively in the relational platform's database via
      the catalog's relational store.
    """

    def __init__(self, ctx: RheemContext | None = None):
        self.ctx = ctx or RheemContext()
        self._tables: dict[str, tuple[Schema, list[Record]]] = {}

    # ------------------------------------------------------------------
    def register_table(
        self, name: str, rows: Sequence[Record], schema: Schema | None = None
    ) -> None:
        """Register an in-memory table of records."""
        rows = list(rows)
        if schema is None:
            if not rows:
                raise SqlTranslationError(
                    f"empty table {name!r} needs an explicit schema"
                )
            schema = rows[0].schema
        self._tables[name] = (schema, rows)

    @property
    def table_names(self) -> tuple[str, ...]:
        names = set(self._tables)
        if self.ctx.catalog is not None:
            names.update(self.ctx.catalog.dataset_names)
        return tuple(sorted(names))

    # ------------------------------------------------------------------
    def _resolve(self, name: str) -> tuple[Schema, DataQuanta]:
        if name in self._tables:
            schema, rows = self._tables[name]
            return schema, self.ctx.collection(rows, name=name)
        catalog = self.ctx.catalog
        if catalog is not None and name in catalog:
            entry = catalog.entry(name)
            if entry.schema is None:
                raise SqlTranslationError(
                    f"dataset {name!r} is schema-less; SQL needs records"
                )
            return entry.schema, self.ctx.table(name)
        raise SqlTranslationError(
            f"unknown table {name!r}; registered: {list(self.table_names)}"
        )

    # ------------------------------------------------------------------
    def plan(self, sql: str) -> DataQuanta:
        """Parse and translate ``sql``; returns the plan handle
        (inspect with ``.explain()``, execute with ``.collect()``)."""
        return translate(parse(sql), self._resolve)

    def execute(
        self, sql: str, platform: str | None = None
    ) -> list[Record]:
        """Run a query; returns the result records."""
        return self.plan(sql).collect(platform=platform)

    def execute_with_metrics(
        self, sql: str, platform: str | None = None
    ) -> tuple[list[Record], ExecutionMetrics]:
        """Run a query; returns (records, execution metrics)."""
        return self.plan(sql).collect_with_metrics(platform=platform)

    def explain(self, sql: str) -> str:
        """The logical plan a query translates to, rendered."""
        return self.plan(sql).explain()
