"""A declarative SQL front-end on the RHEEM abstraction.

Paper §3.2: "an application developer could also expose a declarative
language for users to define their tasks (e.g., queries).  The
application is then responsible for translating a declarative query into
a logical plan."

This application does exactly that for an analytic SQL subset::

    SELECT dept, COUNT(*) AS heads, AVG(salary) AS pay
    FROM employees
    WHERE salary > 50000 AND active
    GROUP BY dept
    HAVING COUNT(*) > 2
    ORDER BY pay DESC
    LIMIT 10

Queries are lexed (:mod:`lexer`), parsed to an AST (:mod:`parser`),
type-checked against the table schemas and translated into a RHEEM
logical plan (:mod:`translator`) — after which the standard application
and multi-platform optimizers take over, so the same query can run on
any processing platform.  :class:`SqlSession` is the user entry point.
"""

from repro.apps.sql.ast import (
    BinaryOp,
    Column,
    FunctionCall,
    JoinClause,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    UnaryOp,
)
from repro.apps.sql.lexer import SqlLexError, tokenize
from repro.apps.sql.parser import SqlParseError, parse
from repro.apps.sql.session import SqlSession
from repro.apps.sql.translator import SqlTranslationError

__all__ = [
    "BinaryOp",
    "Column",
    "FunctionCall",
    "JoinClause",
    "Literal",
    "OrderItem",
    "Query",
    "SelectItem",
    "SqlLexError",
    "SqlParseError",
    "SqlSession",
    "SqlTranslationError",
    "UnaryOp",
    "parse",
    "tokenize",
]
