"""Translate SQL ASTs into RHEEM logical plans.

This is the application optimizer's front half for the SQL application:
the query is checked against the table schemas, then lowered onto the
generic operator library — scans become ``TableSource``/collections,
``WHERE`` a ``Filter`` (with a selectivity hint), joins an equi-``Join``,
``GROUP BY`` a ``GroupBy`` plus an aggregate-computing ``Map``, ``ORDER
BY`` a ``Sort``, ``LIMIT`` a ``Limit`` — after which the standard
optimizers choose variants and platforms.

Rows flow through the plan as *environments*: dictionaries binding both
qualified (``alias.column``) and, when unambiguous, bare column names;
the final projection turns environments into
:class:`~repro.core.types.Record` outputs.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.apps.sql.ast import (
    Column,
    Expression,
    FunctionCall,
    OrderItem,
    Query,
)
from repro.core.context import DataQuanta
from repro.core.logical.operators import CostHints
from repro.core.types import Record, Schema
from repro.errors import RheemError


class SqlTranslationError(RheemError):
    """The query is well-formed SQL but not translatable (bad columns,
    non-grouped select items, unknown tables...)."""


#: resolves a table name to (schema, source DataQuanta handle)
TableResolver = Callable[[str], tuple[Schema, DataQuanta]]


def translate(query: Query, resolve: TableResolver) -> DataQuanta:
    """Lower ``query`` to a logical plan; returns the final handle.

    Collecting the returned handle yields :class:`Record` rows whose
    schema follows the select list.
    """
    return _Translator(query, resolve).build()


class _Translator:
    def __init__(self, query: Query, resolve: TableResolver):
        self.query = query
        self.resolve = resolve
        #: alias -> schema for every table in FROM/JOIN
        self.schemas: dict[str, Schema] = {}

    # ------------------------------------------------------------------
    def build(self) -> DataQuanta:
        query = self.query
        handle = self._scan(query.table, query.alias)
        for join in query.joins:
            handle = self._join(handle, join)
        self._bare_names = self._compute_bare_names()
        handle = handle.map(self._environment_builder(), name="sql-env")

        if query.where is not None:
            self._check_columns(query.where, aggregates_allowed=False)
            where = query.where
            handle = handle.filter(
                lambda env: bool(where.evaluate(env)),
                name="sql-where",
                hints=CostHints(selectivity=0.33),
            )

        if query.is_aggregate:
            handle = self._aggregate(handle)
        else:
            for item in query.select:
                if not item.star:
                    self._check_columns(item.expression, aggregates_allowed=False)
            if query.having is not None:
                raise SqlTranslationError("HAVING requires GROUP BY")

        output_schema, project = self._projection()

        if query.order_by and not query.distinct:
            handle = self._sort(handle, project)
        handle = handle.map(project, name="sql-project")
        if query.distinct:
            handle = handle.distinct()
            if query.order_by:
                handle = self._sort_records(handle, output_schema)
        if query.limit is not None:
            handle = handle.limit(query.limit)
        return handle

    # ------------------------------------------------------------------
    # FROM / JOIN
    # ------------------------------------------------------------------
    def _scan(self, table: str, alias: str) -> DataQuanta:
        schema, handle = self.resolve(table)
        if alias in self.schemas:
            raise SqlTranslationError(f"duplicate table alias {alias!r}")
        self.schemas[alias] = schema
        return handle.map(
            lambda row, a=alias: {(a, field): row[field] for field in row.schema},
            name=f"sql-scan-{alias}",
        )

    def _join(self, left: DataQuanta, join) -> DataQuanta:
        right = self._scan(join.table, join.alias)
        left_key = self._qualified_key(join.left)
        right_key = self._qualified_key(join.right)
        joined = left.join(
            right,
            lambda row, k=left_key: row.get(k),
            lambda row, k=right_key: row.get(k),
            hints=CostHints(key_fanout=None),
        )
        return joined.map(
            lambda pair: {**pair[0], **pair[1]}, name="sql-merge"
        )

    def _qualified_key(self, column: Column) -> tuple[str, str]:
        if column.table is not None:
            if column.table not in self.schemas:
                raise SqlTranslationError(f"unknown table alias {column.table!r}")
            if column.name not in self.schemas[column.table]:
                raise SqlTranslationError(
                    f"no column {column.name!r} in {column.table!r}"
                )
            return (column.table, column.name)
        owners = [
            alias for alias, schema in self.schemas.items()
            if column.name in schema
        ]
        if not owners:
            raise SqlTranslationError(f"unknown column {column.name!r}")
        if len(owners) > 1:
            raise SqlTranslationError(
                f"ambiguous column {column.name!r} (in {sorted(owners)})"
            )
        return (owners[0], column.name)

    def _compute_bare_names(self) -> dict[str, tuple[str, str]]:
        """Bare column name -> unique (alias, field), ambiguity dropped."""
        counts: dict[str, list[tuple[str, str]]] = {}
        for alias, schema in self.schemas.items():
            for field in schema:
                counts.setdefault(field, []).append((alias, field))
        return {
            name: owners[0] for name, owners in counts.items()
            if len(owners) == 1
        }

    def _environment_builder(self):
        bare = self._bare_names

        def build_env(raw: dict[tuple[str, str], Any]) -> dict[str, Any]:
            env = {f"{alias}.{field}": value for (alias, field), value in raw.items()}
            for name, (alias, field) in bare.items():
                env[name] = env[f"{alias}.{field}"]
            return env

        return build_env

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _known_names(self) -> set[str]:
        names = set(self._bare_names)
        for alias, schema in self.schemas.items():
            names.update(f"{alias}.{field}" for field in schema)
        return names

    def _check_columns(self, expression: Expression, aggregates_allowed: bool) -> None:
        if not aggregates_allowed and expression.has_aggregate():
            raise SqlTranslationError(
                f"aggregate not allowed here: {expression.sql()}"
            )
        unknown = expression.columns() - self._known_names()
        if unknown:
            raise SqlTranslationError(
                f"unknown column(s) {sorted(unknown)} in {expression.sql()}"
            )

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def _aggregate(self, handle: DataQuanta) -> DataQuanta:
        query = self.query
        group_exprs = list(query.group_by)
        for expr in group_exprs:
            self._check_columns(expr, aggregates_allowed=False)
        group_sqls = [expr.sql() for expr in group_exprs]

        aggregates = self._collect_aggregates()
        for call in aggregates:
            if call.argument is not None:
                self._check_columns(call.argument, aggregates_allowed=False)

        # Non-aggregate select expressions must be grouping expressions;
        # ORDER BY and HAVING may additionally reference select aliases.
        aliases = {
            item.alias for item in query.select if item.alias is not None
        }
        for item in query.select:
            if item.star:
                raise SqlTranslationError("SELECT * with GROUP BY is ambiguous")
            self._require_grouped(item.expression, group_sqls, set())
        for order in query.order_by:
            self._require_grouped(order.expression, group_sqls, aliases)
        if query.having is not None:
            self._require_grouped(query.having, group_sqls, aliases)

        def group_key(env: dict[str, Any]):
            return tuple(expr.evaluate(env) for expr in group_exprs)

        def fold_group(pair) -> dict[str, Any]:
            key_values, members = pair
            out: dict[str, Any] = {}
            for expr, sql_text, value in zip(group_exprs, group_sqls, key_values):
                out[sql_text] = value
                if isinstance(expr, Column):
                    out[expr.name] = value
            for call in aggregates:
                out[call.sql()] = _compute_aggregate(call, members)
            return out

        handle = handle.group_by(
            group_key, name="sql-groupby", hints=CostHints(key_fanout=0.05)
        ).map(fold_group, name="sql-aggregate")

        if query.having is not None:
            having = query.having
            handle = handle.filter(
                lambda env: bool(having.evaluate(env)), name="sql-having"
            )
        return handle

    def _collect_aggregates(self) -> list[FunctionCall]:
        calls: dict[str, FunctionCall] = {}

        def visit(expression: Expression) -> None:
            if isinstance(expression, FunctionCall):
                calls.setdefault(expression.sql(), expression)
                return
            for attribute in ("left", "right", "operand", "argument"):
                child = getattr(expression, attribute, None)
                if isinstance(child, Expression):
                    visit(child)

        for item in self.query.select:
            if not item.star:
                visit(item.expression)
        if self.query.having is not None:
            visit(self.query.having)
        for order in self.query.order_by:
            visit(order.expression)
        return list(calls.values())

    def _require_grouped(
        self,
        expression: Expression,
        group_sqls: list[str],
        aliases: set[str],
    ) -> None:
        """Every non-aggregate leaf path must be a grouping expression
        (or, where permitted, a select alias)."""
        if expression.sql() in group_sqls:
            return
        if isinstance(expression, FunctionCall):
            return
        if isinstance(expression, Column):
            if expression.table is None and expression.name in aliases:
                return
            # allow bare name matching a grouped qualified column
            for sql_text in group_sqls:
                if sql_text.split(".")[-1] == expression.name:
                    return
            raise SqlTranslationError(
                f"column {expression.sql()} is neither grouped nor aggregated"
            )
        children = [
            getattr(expression, attribute)
            for attribute in ("left", "right", "operand")
            if isinstance(getattr(expression, attribute, None), Expression)
        ]
        if not children and not isinstance(expression, Column):
            return  # literals are always fine
        for child in children:
            self._require_grouped(child, group_sqls, aliases)

    # ------------------------------------------------------------------
    # projection / ordering
    # ------------------------------------------------------------------
    def _projection(self):
        query = self.query
        if len(query.select) == 1 and query.select[0].star:
            if query.joins:
                names = [
                    f"{alias}.{field}"
                    for alias, schema in self.schemas.items()
                    for field in schema
                ]
            else:
                names = list(self.schemas[query.alias].fields)
            schema = Schema(names)

            def project_star(env: dict[str, Any]) -> Record:
                return schema.record(*[env[name] for name in names])

            return schema, project_star

        names = [item.output_name for item in query.select]
        if len(set(names)) != len(names):
            raise SqlTranslationError(f"duplicate output column names: {names}")
        schema = Schema(names)
        expressions = [item.expression for item in query.select]

        def project(env: dict[str, Any]) -> Record:
            return schema.record(*[expr.evaluate(env) for expr in expressions])

        return schema, project

    def _sort(self, handle: DataQuanta, project) -> DataQuanta:
        order_items = list(self.query.order_by)
        select_items = list(self.query.select)

        def sort_key(env: dict[str, Any]):
            # expose select aliases to ORDER BY
            extended = dict(env)
            for item in select_items:
                if not item.star and item.alias:
                    try:
                        extended[item.alias] = item.expression.evaluate(env)
                    except Exception:
                        pass
            return tuple(
                _order_value(order, extended) for order in order_items
            )

        return handle.sort(sort_key)

    def _sort_records(self, handle: DataQuanta, schema: Schema) -> DataQuanta:
        order_items = list(self.query.order_by)

        def sort_key(record: Record):
            env = record.as_dict()
            return tuple(_order_value(order, env) for order in order_items)

        return handle.sort(sort_key)


class _Reversed:
    """Inverts comparison order for DESC keys of arbitrary type."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


def _order_value(order: OrderItem, env: dict[str, Any]):
    value = order.expression.evaluate(env)
    return _Reversed(value) if order.descending else value


def _compute_aggregate(call: FunctionCall, members: list[dict[str, Any]]):
    if call.name == "COUNT" and call.argument is None:
        return len(members)
    values = [call.argument.evaluate(env) for env in members]
    values = [v for v in values if v is not None]
    if call.name == "COUNT":
        return len(values)
    if not values:
        return None
    if call.name == "SUM":
        return sum(values)
    if call.name == "AVG":
        return sum(values) / len(values)
    if call.name == "MIN":
        return min(values)
    if call.name == "MAX":
        return max(values)
    raise SqlTranslationError(f"unsupported aggregate {call.name}")
