"""SQL abstract syntax tree.

Expression nodes know how to evaluate themselves against a row
*environment* (a dict mapping both qualified ``alias.column`` and, where
unambiguous, bare ``column`` names to values) and how to render
themselves back to canonical SQL — the latter is what lets the
translator match ``GROUP BY`` expressions against select items.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import RheemError

AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


class SqlEvalError(RheemError):
    """An expression referenced an unknown column or misused a value."""


class Expression:
    """Base class of expression nodes."""

    def evaluate(self, env: dict[str, Any]) -> Any:
        raise NotImplementedError

    def sql(self) -> str:
        """Canonical SQL rendering (used for matching and naming)."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Column names referenced (canonical form)."""
        return set()

    def has_aggregate(self) -> bool:
        return False


@dataclass(frozen=True)
class Literal(Expression):
    value: Any

    def evaluate(self, env: dict[str, Any]) -> Any:
        return self.value

    def sql(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return repr(self.value)


@dataclass(frozen=True)
class Column(Expression):
    name: str
    table: str | None = None

    @property
    def canonical(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    def evaluate(self, env: dict[str, Any]) -> Any:
        key = self.canonical
        if key in env:
            return env[key]
        if self.table is None and self.name in env:
            return env[self.name]
        raise SqlEvalError(
            f"unknown column {key!r}; available: {sorted(env)}"
        )

    def sql(self) -> str:
        return self.canonical

    def columns(self) -> set[str]:
        return {self.canonical}


_BINARY_IMPL = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "AND": lambda a, b: bool(a) and bool(b),
    "OR": lambda a, b: bool(a) or bool(b),
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression

    def evaluate(self, env: dict[str, Any]) -> Any:
        try:
            impl = _BINARY_IMPL[self.op]
        except KeyError:
            raise SqlEvalError(f"unknown operator {self.op!r}") from None
        return impl(self.left.evaluate(env), self.right.evaluate(env))

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def has_aggregate(self) -> bool:
        return self.left.has_aggregate() or self.right.has_aggregate()


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # "NOT" | "-"
    operand: Expression

    def evaluate(self, env: dict[str, Any]) -> Any:
        value = self.operand.evaluate(env)
        if self.op == "NOT":
            return not value
        if self.op == "-":
            return -value
        raise SqlEvalError(f"unknown unary operator {self.op!r}")

    def sql(self) -> str:
        return f"({self.op} {self.operand.sql()})"

    def columns(self) -> set[str]:
        return self.operand.columns()

    def has_aggregate(self) -> bool:
        return self.operand.has_aggregate()


@dataclass(frozen=True)
class FunctionCall(Expression):
    """An aggregate call: COUNT(*), COUNT(x), SUM/AVG/MIN/MAX(expr)."""

    name: str  # upper-cased
    argument: Expression | None  # None means COUNT(*)

    def evaluate(self, env: dict[str, Any]) -> Any:
        # Aggregates never evaluate per row; the translator computes them
        # over groups and binds the result under the call's SQL rendering.
        key = self.sql()
        if key in env:
            return env[key]
        raise SqlEvalError(
            f"aggregate {key} used outside an aggregation context"
        )

    def sql(self) -> str:
        inner = "*" if self.argument is None else self.argument.sql()
        return f"{self.name}({inner})"

    def columns(self) -> set[str]:
        return self.argument.columns() if self.argument else set()

    def has_aggregate(self) -> bool:
        return True


# ----------------------------------------------------------------------
# statement nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    expression: Expression
    alias: str | None = None
    #: True only for the bare '*' select list
    star: bool = False

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, Column):
            return self.expression.name
        return self.expression.sql()


@dataclass(frozen=True)
class JoinClause:
    table: str
    alias: str
    left: Column
    right: Column


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class Query:
    select: tuple[SelectItem, ...]
    table: str
    alias: str
    joins: tuple[JoinClause, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return bool(self.group_by) or any(
            item.expression.has_aggregate() for item in self.select if not item.star
        )
