"""SQL tokenizer.

Produces a flat token stream with positions, so the parser can report
errors pointing at the offending character.  Keywords are recognised
case-insensitively; identifiers keep their original spelling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RheemError


class SqlLexError(RheemError):
    """Bad character or unterminated literal in the query text."""


KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
        "LIMIT", "AS", "AND", "OR", "NOT", "JOIN", "ON", "ASC", "DESC",
        "TRUE", "FALSE", "NULL", "DISTINCT", "INNER",
    }
)

#: multi-character operators first, so <= lexes before <
OPERATORS = ["<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%"]
PUNCTUATION = [",", "(", ")", "."]


@dataclass(frozen=True)
class Token:
    """One lexical unit: kind ∈ {KEYWORD, IDENT, NUMBER, STRING, OP,
    PUNCT, EOF}."""

    kind: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; always ends with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end == -1:
                raise SqlLexError(f"unterminated string literal at {i}")
            tokens.append(Token("STRING", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("PUNCT", ch, i))
            i += 1
            continue
        raise SqlLexError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
