"""Applications built on the RHEEM abstraction.

Three applications, matching §5 of the paper: data cleaning
(:mod:`repro.apps.cleaning`, the BigDansing case study), machine learning
(:mod:`repro.apps.ml`) and graph processing (:mod:`repro.apps.graph`) —
"We are currently developing two other applications: a machine learning
application and a graph processing application."
"""
