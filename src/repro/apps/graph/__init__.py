"""Graph-processing application on the RHEEM abstraction (paper §5).

PageRank and connected components expressed as iterative RHEEM dataflows:
vertex state flows through a ``Repeat`` loop, edges enter the body as a
loop-invariant side input (cached by the executor across iterations), and
each iteration is a join + flat-map + reduce-by — the classic
vertex-centric pattern on a general dataflow engine.
"""

from repro.apps.graph.components import ConnectedComponents
from repro.apps.graph.datagen import erdos_renyi, ring_of_cliques
from repro.apps.graph.pagerank import PageRank
from repro.apps.graph.sssp import ShortestPaths

__all__ = [
    "ConnectedComponents",
    "PageRank",
    "ShortestPaths",
    "erdos_renyi",
    "ring_of_cliques",
]
