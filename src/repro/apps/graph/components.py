"""Connected components by label propagation on the RHEEM dataflow.

Every node starts labelled with its own id; each iteration propagates
labels across (undirected) edges and keeps the minimum label per node.
The loop stops when an iteration changes nothing — the driver-side
stopping condition compares successive states, exactly the ``Loop``
operator role from the paper's template.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.graph.datagen import Edge, node_set
from repro.core.context import DataQuanta, RheemContext
from repro.core.logical.operators import CostHints
from repro.core.metrics import ExecutionMetrics
from repro.errors import ValidationError


class ConnectedComponents:
    """Minimum-label propagation over an edge list (treated undirected)."""

    def __init__(self, max_iterations: int = 100):
        if max_iterations <= 0:
            raise ValidationError(
                f"max_iterations must be positive, got {max_iterations}"
            )
        self.max_iterations = max_iterations
        self.labels: dict[int, int] | None = None
        self.metrics: ExecutionMetrics | None = None

    def run(
        self,
        ctx: RheemContext,
        edges: Sequence[Edge],
        platform: str | None = None,
    ) -> dict[int, int]:
        """Label every node with its component's minimum node id."""
        edges = list(edges)
        if not edges:
            raise ValidationError("connected components needs at least one edge")
        nodes = node_set(edges)
        neighbors: dict[int, list[int]] = {node: [] for node in nodes}
        for src, dst in edges:
            neighbors[src].append(dst)
            neighbors[dst].append(src)
        adjacency = sorted(neighbors.items())

        def body(state: DataQuanta) -> DataQuanta:
            adj = state.source(adjacency, name="adjacency")
            propagated = state.join(
                adj,
                left_key=lambda nl: nl[0],
                right_key=lambda al: al[0],
                hints=CostHints(key_fanout=1.0 / len(nodes)),
            ).flat_map(
                _propagate,
                name="propagate",
                hints=CostHints(output_factor=2.0 * len(edges) / len(nodes) + 1),
            )
            return propagated.reduce_by(
                key=lambda pair: pair[0],
                reducer=lambda a, b: (a[0], min(a[1], b[1])),
                name="min-label",
            )

        # Driver-side fixpoint detection: stop when the labelling repeats.
        previous: dict[str, frozenset] = {"state": frozenset()}

        def unchanged(state: list) -> bool:
            current = frozenset(state)
            if current == previous["state"]:
                return True
            previous["state"] = current
            return False

        initial = [(node, node) for node in nodes]
        final_state, metrics = (
            ctx.collection(initial, name="initial-labels")
            .repeat(None, body, condition=unchanged,
                    max_iterations=self.max_iterations)
            .collect_with_metrics(platform=platform)
        )
        self.metrics = metrics
        self.labels = dict(final_state)
        return self.labels

    @property
    def component_count(self) -> int:
        """Number of distinct components found."""
        if self.labels is None:
            raise ValidationError("run() has not been called")
        return len(set(self.labels.values()))

    def components(self) -> dict[int, list[int]]:
        """Component label -> sorted member nodes."""
        if self.labels is None:
            raise ValidationError("run() has not been called")
        groups: dict[int, list[int]] = {}
        for node, label in self.labels.items():
            groups.setdefault(label, []).append(node)
        return {label: sorted(members) for label, members in groups.items()}


def _propagate(pair):
    """((node, label), (node, neighbors)) -> label offers."""
    (node, label), (_, adjacent) = pair
    offers = [(neighbor, label) for neighbor in adjacent]
    offers.append((node, label))
    return offers
