"""PageRank as an iterative RHEEM dataflow.

Per iteration: join the current ``(node, rank)`` state with the adjacency
lists, distribute each node's rank over its out-edges, sum contributions
per target, and apply the damping factor.  Dangling mass is redistributed
uniformly so ranks keep summing to 1.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Sequence

from repro.apps.graph.datagen import Edge, node_set
from repro.core.context import DataQuanta, RheemContext
from repro.core.logical.operators import CostHints
from repro.core.metrics import ExecutionMetrics
from repro.errors import ValidationError

#: prebuilt key extractor: C-level, so the batch hash kernels build key
#: columns without re-entering the interpreter per quantum
_FIRST = itemgetter(0)


class PageRank:
    """Damped PageRank over a directed edge list."""

    def __init__(self, iterations: int = 20, damping: float = 0.85):
        if not 0.0 < damping < 1.0:
            raise ValidationError(f"damping must be in (0, 1), got {damping}")
        if iterations <= 0:
            raise ValidationError(f"iterations must be positive, got {iterations}")
        self.iterations = iterations
        self.damping = damping
        self.ranks: dict[int, float] | None = None
        self.metrics: ExecutionMetrics | None = None

    def run(
        self,
        ctx: RheemContext,
        edges: Sequence[Edge],
        platform: str | None = None,
        columnar: bool | None = None,
    ) -> dict[int, float]:
        """Compute ranks; returns {node: rank} and stores metrics.

        ``columnar=True`` opts the per-iteration ``(node, rank)`` state
        hand-offs into the struct-of-arrays channel layout — the packing
        and unpacking work is charged to the cost ledger explicitly.
        """
        edges = list(edges)
        if not edges:
            raise ValidationError("PageRank needs at least one edge")
        nodes = node_set(edges)
        n = len(nodes)
        out_neighbors: dict[int, list[int]] = {node: [] for node in nodes}
        for src, dst in edges:
            out_neighbors[src].append(dst)
        adjacency = sorted(out_neighbors.items())
        damping = self.damping
        base_rank = (1.0 - damping) / n

        def _distribute(pair):
            """((node, rank), (node, neighbors)) -> damped contributions."""
            (_, rank), (_, neighbors) = pair
            if not neighbors:
                return []
            share = damping * rank / len(neighbors)
            return [(neighbor, share) for neighbor in neighbors]

        def body(state: DataQuanta) -> DataQuanta:
            adj = state.source(adjacency, name="adjacency")
            contributions = state.join(
                adj,
                left_key=_FIRST,
                right_key=_FIRST,
                hints=CostHints(key_fanout=1.0 / n),
            ).flat_map(
                _distribute,
                name="distribute",
                hints=CostHints(output_factor=max(1.0, len(edges) / n)),
            )
            base = state.map(
                lambda nr: (nr[0], base_rank), name="base-rank"
            )
            return contributions.union(base).reduce_by(
                key=_FIRST,
                reducer=lambda a, b: (a[0], a[1] + b[1]),
                name="sum-contributions",
                hints=CostHints(key_fanout=1.0 / max(2.0, len(edges) / n)),
            )

        initial = [(node, 1.0 / n) for node in nodes]
        quanta = (
            ctx.collection(initial, name="initial-ranks")
            .repeat(self.iterations, body)
        )
        saved_columnar = ctx.executor.columnar
        if columnar is not None:
            ctx.executor.columnar = columnar
        try:
            final_state, metrics = quanta.collect_with_metrics(
                platform=platform
            )
        finally:
            ctx.executor.columnar = saved_columnar
        self.metrics = metrics
        ranks = dict(final_state)
        # Dangling nodes leaked rank mass; renormalise to sum 1.
        total = sum(ranks.values())
        self.ranks = {node: rank / total for node, rank in ranks.items()}
        return self.ranks

    def top(self, k: int) -> list[tuple[int, float]]:
        """The ``k`` highest-ranked nodes."""
        if self.ranks is None:
            raise ValidationError("run() has not been called")
        return sorted(self.ranks.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
