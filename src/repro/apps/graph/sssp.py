"""Single-source shortest paths by distance relaxation (Bellman–Ford
style) on the RHEEM dataflow.

Same vertex-centric pattern as the other graph algorithms: the state is
``(node, distance)``, each iteration joins it with the weighted adjacency
side input, relaxes every out-edge, and keeps the minimum distance per
node; a driver-side fixpoint condition stops the loop when no distance
improves.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.context import DataQuanta, RheemContext
from repro.core.logical.operators import CostHints
from repro.core.metrics import ExecutionMetrics
from repro.errors import ValidationError

#: a weighted edge: (source, target, weight)
WeightedEdge = tuple[int, int, float]


class ShortestPaths:
    """SSSP over a directed, non-negatively weighted edge list."""

    def __init__(self, max_iterations: int = 100):
        if max_iterations <= 0:
            raise ValidationError(
                f"max_iterations must be positive, got {max_iterations}"
            )
        self.max_iterations = max_iterations
        self.distances: dict[int, float] | None = None
        self.metrics: ExecutionMetrics | None = None

    def run(
        self,
        ctx: RheemContext,
        edges: Sequence[WeightedEdge],
        source: int,
        platform: str | None = None,
    ) -> dict[int, float]:
        """Distances from ``source``; unreachable nodes map to ``inf``."""
        edges = list(edges)
        if not edges:
            raise ValidationError("shortest paths needs at least one edge")
        for _, _, weight in edges:
            if weight < 0:
                raise ValidationError("negative edge weights are not supported")
        nodes = sorted(
            {n for s, t, _ in edges for n in (s, t)} | {source}
        )
        out_edges: dict[int, list[tuple[int, float]]] = {n: [] for n in nodes}
        for src, dst, weight in edges:
            out_edges[src].append((dst, weight))
        adjacency = sorted(out_edges.items())

        def body(state: DataQuanta) -> DataQuanta:
            adj = state.source(adjacency, name="adjacency")
            relaxed = state.join(
                adj,
                left_key=lambda nd: nd[0],
                right_key=lambda al: al[0],
                hints=CostHints(key_fanout=1.0 / len(nodes)),
            ).flat_map(
                _relax,
                name="relax",
                hints=CostHints(output_factor=1.0 + len(edges) / len(nodes)),
            )
            return relaxed.reduce_by(
                key=lambda pair: pair[0],
                reducer=lambda a, b: (a[0], min(a[1], b[1])),
                name="min-distance",
            )

        previous: dict[str, frozenset] = {"state": frozenset()}

        def unchanged(state: list) -> bool:
            current = frozenset(state)
            if current == previous["state"]:
                return True
            previous["state"] = current
            return False

        initial = [
            (node, 0.0 if node == source else math.inf) for node in nodes
        ]
        final_state, metrics = (
            ctx.collection(initial, name="initial-distances")
            .repeat(None, body, condition=unchanged,
                    max_iterations=self.max_iterations)
            .collect_with_metrics(platform=platform)
        )
        self.metrics = metrics
        self.distances = dict(final_state)
        return self.distances

    def reachable(self) -> dict[int, float]:
        """Only the nodes with finite distance."""
        if self.distances is None:
            raise ValidationError("run() has not been called")
        return {
            node: dist for node, dist in self.distances.items()
            if math.isfinite(dist)
        }


def _relax(pair):
    """((node, dist), (node, [(target, weight)])) -> distance offers."""
    (node, dist), (_, targets) = pair
    offers = [(node, dist)]
    if math.isfinite(dist):
        offers.extend((target, dist + weight) for target, weight in targets)
    return offers
