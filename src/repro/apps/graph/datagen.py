"""Synthetic graph generators (deterministic, seeded)."""

from __future__ import annotations

from repro.util.rng import make_rng

Edge = tuple[int, int]


def erdos_renyi(n: int, p: float, seed: int = 23, directed: bool = True) -> list[Edge]:
    """G(n, p) random graph as an edge list over nodes ``0..n-1``.

    Self-loops are excluded; for undirected graphs each edge appears once
    with ``src < dst``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be within [0, 1], got {p}")
    rng = make_rng(seed, "er", n, p, directed)
    edges: list[Edge] = []
    for src in range(n):
        candidates = range(n) if directed else range(src + 1, n)
        for dst in candidates:
            if src != dst and rng.random() < p:
                edges.append((src, dst))
    return edges


def ring_of_cliques(
    cliques: int, clique_size: int, connect: bool = True
) -> list[Edge]:
    """``cliques`` complete sub-graphs, optionally chained into a ring.

    With ``connect=False`` the graph has exactly ``cliques`` connected
    components — the ground truth the component tests verify against.
    """
    edges: list[Edge] = []
    for c in range(cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
        if connect and cliques > 1:
            next_base = ((c + 1) % cliques) * clique_size
            edges.append((base, next_base))
    return edges


def node_set(edges: list[Edge]) -> list[int]:
    """All node ids mentioned by an edge list, sorted."""
    nodes = set()
    for src, dst in edges:
        nodes.add(src)
        nodes.add(dst)
    return sorted(nodes)
